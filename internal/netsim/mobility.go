package netsim

import (
	"time"
)

// MobilityModel updates node positions each tick. Implementations keep any
// per-node state on the Node's waypoint fields or internally.
type MobilityModel interface {
	// Init is called once per node before the first step.
	Init(n *Network, node *Node)
	// Step advances node by dt of virtual time.
	Step(n *Network, node *Node, dt time.Duration)
}

// Planner is an optional MobilityModel extension that splits Step into a
// pure planning half and an arrival commit, enabling the deterministic
// two-phase parallel tick (see parallel.go). A model implementing Planner
// must keep Step equivalent to: apply PlanStep's position, then run
// CommitArrival when it reports arrival.
type Planner interface {
	MobilityModel
	// PlanStep computes node's position after dt of movement. It runs on a
	// worker goroutine: it must not mutate the node, the network or the
	// RNG. moved reports a position to commit; arrived reports that the
	// node reached its waypoint and CommitArrival must run for it during
	// the serial commit phase.
	PlanStep(node *Node, now, dt time.Duration) (next Position, moved, arrived bool)
	// CommitArrival performs the model's arrival-time state changes and
	// RNG draws. It runs on the event-loop goroutine, in the same node
	// order the serial engine steps, so the RNG stream is identical at any
	// worker count.
	CommitArrival(n *Network, node *Node)
}

// RandomWaypoint is the classic ad-hoc mobility model: each node picks a
// uniform random destination in the field, moves toward it at a uniform
// random speed, pauses, and repeats.
type RandomWaypoint struct {
	// FieldW and FieldH bound the rectangular field in metres.
	FieldW, FieldH float64
	// SpeedMin and SpeedMax bound the uniform speed draw in metres/second.
	SpeedMin, SpeedMax float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

var _ Planner = (*RandomWaypoint)(nil)

// Init picks the node's first waypoint.
func (m *RandomWaypoint) Init(n *Network, node *Node) {
	m.pick(n, node)
}

func (m *RandomWaypoint) pick(n *Network, node *Node) {
	rng := n.Sim().Rand()
	node.target = Position{X: rng.Float64() * m.FieldW, Y: rng.Float64() * m.FieldH}
	node.speed = m.SpeedMin + rng.Float64()*(m.SpeedMax-m.SpeedMin)
}

// Step moves the node toward its waypoint, pausing on arrival. It is
// exactly PlanStep + commit, so the serial and parallel engines share one
// integration formula and produce bit-identical trajectories.
func (m *RandomWaypoint) Step(n *Network, node *Node, dt time.Duration) {
	next, moved, arrived := m.PlanStep(node, n.Sim().Now(), dt)
	if moved {
		node.setPos(next)
	}
	if arrived {
		m.CommitArrival(n, node)
	}
}

// PlanStep implements Planner: pure integration toward the current
// waypoint, no mutation, no RNG.
func (m *RandomWaypoint) PlanStep(node *Node, now, dt time.Duration) (Position, bool, bool) {
	if now < node.pauseTo {
		return Position{}, false, false
	}
	pos := node.Pos()
	dist := pos.Dist(node.target)
	travel := node.speed * dt.Seconds()
	if travel >= dist {
		return node.target, true, true
	}
	frac := travel / dist
	next := pos
	next.X += (node.target.X - next.X) * frac
	next.Y += (node.target.Y - next.Y) * frac
	return next, true, false
}

// CommitArrival implements Planner: start the pause and draw the next
// waypoint and speed from the simulator RNG.
func (m *RandomWaypoint) CommitArrival(n *Network, node *Node) {
	node.pauseTo = n.Sim().Now() + m.Pause
	m.pick(n, node)
}

// Static is a mobility model that never moves nodes. Useful for pinning
// infrastructure nodes while others roam.
type Static struct{}

var _ MobilityModel = Static{}

// Init implements MobilityModel.
func (Static) Init(*Network, *Node) {}

// Step implements MobilityModel.
func (Static) Step(*Network, *Node, time.Duration) {}

// Waypath moves a node along a fixed sequence of positions at a constant
// speed, then stops. It models scripted walks such as a user approaching a
// cinema.
type Waypath struct {
	Points []Position
	Speed  float64

	next map[string]int
}

var _ MobilityModel = (*Waypath)(nil)

// Init implements MobilityModel.
func (m *Waypath) Init(n *Network, node *Node) {
	if m.next == nil {
		m.next = make(map[string]int)
	}
	m.next[node.ID] = 0
}

// Step implements MobilityModel.
func (m *Waypath) Step(n *Network, node *Node, dt time.Duration) {
	i := m.next[node.ID]
	if i >= len(m.Points) {
		return
	}
	target := m.Points[i]
	pos := node.Pos()
	dist := pos.Dist(target)
	travel := m.Speed * dt.Seconds()
	for travel >= dist {
		pos = target
		travel -= dist
		i++
		m.next[node.ID] = i
		if i >= len(m.Points) {
			node.setPos(pos)
			return
		}
		target = m.Points[i]
		dist = pos.Dist(target)
	}
	if dist > 0 {
		frac := travel / dist
		pos.X += (target.X - pos.X) * frac
		pos.Y += (target.Y - pos.Y) * frac
	}
	node.setPos(pos)
}

// Mobility attaches a model to a set of nodes and advances them on a fixed
// tick until stopped.
type Mobility struct {
	net    *Network
	model  MobilityModel
	nodes  []string
	tick   time.Duration
	event  *Event
	active bool

	// two-phase tick buffers, reused across ticks.
	resolved []*Node
	plans    []stepPlan
}

// stepPlan is one node's phase-1 output, committed in phase 2.
type stepPlan struct {
	next    Position
	moved   bool
	arrived bool
}

// StartMobility begins moving the given nodes under model every tick of
// virtual time. It returns a handle whose Stop halts movement.
func (n *Network) StartMobility(model MobilityModel, tick time.Duration, nodeIDs ...string) *Mobility {
	if tick <= 0 {
		tick = time.Second
	}
	m := &Mobility{net: n, model: model, nodes: nodeIDs, tick: tick, active: true}
	for _, id := range nodeIDs {
		if node := n.Node(id); node != nil {
			model.Init(n, node)
		}
	}
	m.schedule()
	return m
}

func (m *Mobility) schedule() {
	m.event = m.net.Sim().Schedule(m.tick, func() {
		if !m.active {
			return
		}
		if p, ok := m.model.(Planner); ok && m.net.workers > 1 {
			m.stepTwoPhase(p)
		} else {
			for _, id := range m.nodes {
				if node := m.net.Node(id); node != nil && node.Up {
					m.model.Step(m.net, node, m.tick)
					// Keep the spatial index in step and advance the topology
					// epoch for any node the model actually moved.
					m.net.nodeMoved(node)
				}
			}
		}
		m.schedule()
	})
}

// stepTwoPhase is one parallel mobility tick. Phase 1 plans every node's
// movement across the worker pool, touching nothing shared; phase 2 commits
// positions, spatial re-indexing and the model's arrival RNG draws
// serially, in the same node order the serial loop uses — so trajectories,
// epochs and the RNG stream are bit-identical to the serial engine.
func (m *Mobility) stepTwoPhase(model Planner) {
	// Resolve the node set fresh each tick, matching the serial loop's
	// per-tick lookups (down nodes skip the tick; unknown IDs are ignored).
	m.resolved = m.resolved[:0]
	for _, id := range m.nodes {
		if node := m.net.Node(id); node != nil && node.Up {
			m.resolved = append(m.resolved, node)
		}
	}
	if cap(m.plans) < len(m.resolved) {
		m.plans = make([]stepPlan, len(m.resolved))
	}
	plans := m.plans[:len(m.resolved)]
	now := m.net.Sim().Now()
	runSharded(len(m.resolved), m.net.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			next, moved, arrived := model.PlanStep(m.resolved[i], now, m.tick)
			plans[i] = stepPlan{next: next, moved: moved, arrived: arrived}
		}
	})
	for i, node := range m.resolved {
		if plans[i].moved {
			node.setPos(plans[i].next)
		}
		if plans[i].arrived {
			model.CommitArrival(m.net, node)
		}
		m.net.nodeMoved(node)
	}
}

// Stop halts movement. Safe to call more than once.
func (m *Mobility) Stop() {
	m.active = false
	if m.event != nil {
		m.event.Cancel()
	}
}
