package netsim

import (
	"sync"
	"time"
)

// MobilityModel updates node positions each tick. Implementations keep any
// per-node state on the Node's waypoint fields or internally.
type MobilityModel interface {
	// Init is called once per node before the first step.
	Init(n *Network, node *Node)
	// Step advances node by dt of virtual time.
	Step(n *Network, node *Node, dt time.Duration)
}

// Planner is an optional MobilityModel extension that splits Step into a
// pure planning half and an arrival commit, enabling the deterministic
// two-phase parallel tick (see parallel.go). A model implementing Planner
// must keep Step equivalent to: apply PlanStep's position, then run
// CommitArrival when it reports arrival.
type Planner interface {
	MobilityModel
	// PlanStep computes node's position after dt of movement. It runs on a
	// worker goroutine: it must not mutate the node, the network or the
	// RNG. moved reports a position to commit; arrived reports that the
	// node reached its waypoint and CommitArrival must run for it during
	// the serial commit phase.
	PlanStep(node *Node, now, dt time.Duration) (next Position, moved, arrived bool)
	// CommitArrival performs the model's arrival-time state changes and
	// RNG draws. It runs on the event-loop goroutine, in the same node
	// order the serial engine steps, so the RNG stream is identical at any
	// worker count.
	CommitArrival(n *Network, node *Node)
}

// Quiescer is an optional MobilityModel extension that reports when a node
// next needs a Step, letting Mobility park it on the time-wheel instead of
// visiting it every tick. The contract: between now and the returned
// instant, Step must be a pure no-op for the node (no position change, no
// RNG draw) — skipping those calls outright must be unobservable. ok=false
// parks the node indefinitely; it is stepped again only after an external
// wake (Network.SetUp re-arms rejoining nodes). Models that do not
// implement Quiescer are stepped densely, every node every tick, exactly
// as before the wheel existed.
type Quiescer interface {
	NextDue(node *Node, now time.Duration) (at time.Duration, ok bool)
}

// RandomWaypoint is the classic ad-hoc mobility model: each node picks a
// uniform random destination in the field, moves toward it at a uniform
// random speed, pauses, and repeats.
type RandomWaypoint struct {
	// FieldW and FieldH bound the rectangular field in metres.
	FieldW, FieldH float64
	// SpeedMin and SpeedMax bound the uniform speed draw in metres/second.
	SpeedMin, SpeedMax float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

var _ Planner = (*RandomWaypoint)(nil)
var _ Quiescer = (*RandomWaypoint)(nil)

// Init picks the node's first waypoint.
func (m *RandomWaypoint) Init(n *Network, node *Node) {
	m.pick(n, node)
}

func (m *RandomWaypoint) pick(n *Network, node *Node) {
	rng := n.Sim().Rand()
	node.target = Position{X: rng.Float64() * m.FieldW, Y: rng.Float64() * m.FieldH}
	node.speed = m.SpeedMin + rng.Float64()*(m.SpeedMax-m.SpeedMin)
}

// Step moves the node toward its waypoint, pausing on arrival. It is
// exactly PlanStep + commit, so the serial and parallel engines share one
// integration formula and produce bit-identical trajectories.
func (m *RandomWaypoint) Step(n *Network, node *Node, dt time.Duration) {
	next, moved, arrived := m.PlanStep(node, n.Sim().Now(), dt)
	if moved {
		node.setPos(next)
	}
	if arrived {
		m.CommitArrival(n, node)
	}
}

// PlanStep implements Planner: pure integration toward the current
// waypoint, no mutation, no RNG.
func (m *RandomWaypoint) PlanStep(node *Node, now, dt time.Duration) (Position, bool, bool) {
	if now < node.pauseTo {
		return Position{}, false, false
	}
	pos := node.Pos()
	dist := pos.Dist(node.target)
	travel := node.speed * dt.Seconds()
	if travel >= dist {
		return node.target, true, true
	}
	frac := travel / dist
	next := pos
	next.X += (node.target.X - next.X) * frac
	next.Y += (node.target.Y - next.Y) * frac
	return next, true, false
}

// CommitArrival implements Planner: start the pause and draw the next
// waypoint and speed from the simulator RNG.
func (m *RandomWaypoint) CommitArrival(n *Network, node *Node) {
	node.pauseTo = n.Sim().Now() + m.Pause
	m.pick(n, node)
}

// NextDue implements Quiescer: a pausing node next needs a step when its
// dwell ends (PlanStep is a guaranteed no-op before pauseTo); a moving node
// needs every tick.
func (m *RandomWaypoint) NextDue(node *Node, now time.Duration) (time.Duration, bool) {
	if now < node.pauseTo {
		return node.pauseTo, true
	}
	return now, true
}

// Static is a mobility model that never moves nodes. Useful for pinning
// infrastructure nodes while others roam.
type Static struct{}

var _ MobilityModel = Static{}
var _ Quiescer = Static{}

// Init implements MobilityModel.
func (Static) Init(*Network, *Node) {}

// Step implements MobilityModel.
func (Static) Step(*Network, *Node, time.Duration) {}

// NextDue implements Quiescer: static nodes are permanently quiescent.
func (Static) NextDue(*Node, time.Duration) (time.Duration, bool) { return 0, false }

// Waypath moves a node along a fixed sequence of positions at a constant
// speed, then stops. It models scripted walks such as a user approaching a
// cinema.
type Waypath struct {
	Points []Position
	Speed  float64

	next map[string]int
}

var _ MobilityModel = (*Waypath)(nil)
var _ Quiescer = (*Waypath)(nil)

// Init implements MobilityModel.
func (m *Waypath) Init(n *Network, node *Node) {
	if m.next == nil {
		m.next = make(map[string]int)
	}
	m.next[node.ID] = 0
}

// Step implements MobilityModel.
func (m *Waypath) Step(n *Network, node *Node, dt time.Duration) {
	i := m.next[node.ID]
	if i >= len(m.Points) {
		return
	}
	target := m.Points[i]
	pos := node.Pos()
	dist := pos.Dist(target)
	travel := m.Speed * dt.Seconds()
	for travel >= dist {
		pos = target
		travel -= dist
		i++
		m.next[node.ID] = i
		if i >= len(m.Points) {
			node.setPos(pos)
			return
		}
		target = m.Points[i]
		dist = pos.Dist(target)
	}
	if dist > 0 {
		frac := travel / dist
		pos.X += (target.X - pos.X) * frac
		pos.Y += (target.Y - pos.Y) * frac
	}
	node.setPos(pos)
}

// NextDue implements Quiescer: a node still walking its path moves every
// tick; one that exhausted it parks forever.
func (m *Waypath) NextDue(node *Node, now time.Duration) (time.Duration, bool) {
	if m.next[node.ID] >= len(m.Points) {
		return 0, false
	}
	return now, true
}

// Mobility attaches a model to a set of nodes and advances them on a fixed
// tick until stopped. Nodes with nothing due — paused at a waypoint, path
// exhausted, down — are parked on a time-wheel and cost zero until their
// wake tick, so a tick's cost scales with the active subset, not the
// population. The due set fires in member order (the StartMobility argument
// order), which is exactly the order the dense loop visited, so positions
// and the RNG stream are bit-identical to dense ticking at any worker
// count.
type Mobility struct {
	net     *Network
	model   MobilityModel
	planner Planner  // model's two-phase half, nil when not implemented
	quiesce Quiescer // model's sparse-tick half, nil = dense (arm every tick)
	tick    time.Duration
	event   *Event
	active  bool
	start   time.Duration // virtual time of StartMobility; tick k fires at start + k*tick
	tickIdx int64         // index of the last fired tick

	nodes []*Node         // members in argument order — the canonical step order
	index map[*Node]int32 // member -> index in nodes, for external re-arming
	wheel *timeWheel

	// per-tick buffers, reused across ticks.
	due      []int32
	resolved []*Node
	resIdx   []int32
	plans    []stepPlan
	// planBuckets shards the resolved due set by grid-region owner for
	// locality-sharded planning: one bucket per worker, each holding indices
	// into resolved. The same buckets feed commitMoves so the commit never
	// re-buckets.
	planBuckets [][]int32
}

// stepPlan is one node's phase-1 output, committed in phase 2.
type stepPlan struct {
	next    Position
	moved   bool
	arrived bool
}

// StartMobility begins moving the given nodes under model every tick of
// virtual time. It returns a handle whose Stop halts movement. Node IDs are
// resolved once, here: unknown IDs and duplicates are dropped, and the
// surviving order is the canonical per-tick step order.
func (n *Network) StartMobility(model MobilityModel, tick time.Duration, nodeIDs ...string) *Mobility {
	if tick <= 0 {
		tick = time.Second
	}
	m := &Mobility{net: n, model: model, tick: tick, active: true, start: n.sim.Now()}
	m.planner, _ = model.(Planner)
	m.quiesce, _ = model.(Quiescer)
	m.nodes = make([]*Node, 0, len(nodeIDs))
	m.index = make(map[*Node]int32, len(nodeIDs))
	for _, id := range nodeIDs {
		node := n.Node(id)
		if node == nil {
			continue
		}
		if _, dup := m.index[node]; dup {
			continue
		}
		m.index[node] = int32(len(m.nodes))
		m.nodes = append(m.nodes, node)
		model.Init(n, node)
	}
	m.wheel = newTimeWheel(len(m.nodes))
	for i, node := range m.nodes {
		m.arm(int32(i), node)
	}
	n.wakers = append(n.wakers, m)
	m.schedule()
	return m
}

func (m *Mobility) schedule() {
	m.event = m.net.Sim().Schedule(m.tick, func() {
		if !m.active {
			return
		}
		m.tickIdx++
		m.stepDue()
		m.schedule()
	})
}

// slotFor maps a virtual instant to the first tick slot firing at or after
// it — never earlier than the next tick.
func (m *Mobility) slotFor(at time.Duration) int64 {
	slot := m.tickIdx + 1
	if d := at - m.start; d > 0 {
		if k := int64((d + m.tick - 1) / m.tick); k > slot {
			slot = k
		}
	}
	return slot
}

// arm asks the model when member i next needs a step and schedules the
// wake. A model without Quiescer arms every tick — the dense loop.
func (m *Mobility) arm(i int32, node *Node) {
	if m.quiesce == nil {
		m.wheel.arm(i, m.tickIdx+1)
		return
	}
	due, ok := m.quiesce.NextDue(node, m.net.sim.Now())
	if !ok {
		return
	}
	m.wheel.arm(i, m.slotFor(due))
}

// nodeUp re-arms a member that just came back up (churn rejoin, duty-cycle
// wake): a down node that fired while parked is skipped without re-arming,
// so the external wake is what puts it back on the wheel.
func (m *Mobility) nodeUp(node *Node) {
	if !m.active {
		return
	}
	if i, ok := m.index[node]; ok {
		m.wheel.arm(i, m.tickIdx+1)
	}
}

// stepDue advances this tick's due set. Down members are skipped and left
// parked (nodeUp re-arms them on rejoin); everything stepped is re-armed
// for its next due tick afterwards.
func (m *Mobility) stepDue() {
	m.due = m.wheel.collect(m.tickIdx, m.due[:0])
	if len(m.due) == 0 {
		return
	}
	if m.planner != nil && m.net.workers > 1 {
		m.stepTwoPhase(m.planner)
		return
	}
	for _, i := range m.due {
		node := m.nodes[i]
		if !node.Up {
			continue
		}
		m.model.Step(m.net, node, m.tick)
		// Keep the spatial index in step and advance the topology epoch
		// for any node the model actually moved.
		m.net.nodeMoved(node)
		m.arm(i, node)
	}
}

// stepTwoPhase is one parallel mobility tick over the due set. Phase 1
// plans movement across the worker pool, touching nothing shared; phase 2
// commits positions, the model's arrival RNG draws and the spatial
// re-indexing in canonical node order — so trajectories, epochs and the
// RNG stream are bit-identical to the serial engine.
func (m *Mobility) stepTwoPhase(model Planner) {
	m.resolved = m.resolved[:0]
	m.resIdx = m.resIdx[:0]
	for _, i := range m.due {
		if node := m.nodes[i]; node.Up {
			m.resolved = append(m.resolved, node)
			m.resIdx = append(m.resIdx, i)
		}
	}
	if cap(m.plans) < len(m.resolved) {
		m.plans = make([]stepPlan, len(m.resolved))
	}
	plans := m.plans[:len(m.resolved)]
	now := m.net.Sim().Now()
	w := m.net.workers
	var buckets [][]int32
	if w > 1 && len(m.resolved) >= regionMoveParallelMin {
		// Locality-sharded planning: each worker streams the nodes of the
		// grid regions it owns, instead of an arbitrary index span — the
		// same spatial partition the commit shards by, so the buckets are
		// computed once and reused there. PlanStep is pure, so any
		// partition yields identical plans; only cache traffic changes.
		buckets = m.bucketByRegion(w)
		var wg sync.WaitGroup
		wg.Add(len(buckets))
		for _, bucket := range buckets {
			go func(idxs []int32) {
				defer wg.Done()
				for _, i := range idxs {
					next, moved, arrived := model.PlanStep(m.resolved[i], now, m.tick)
					plans[i] = stepPlan{next: next, moved: moved, arrived: arrived}
				}
			}(bucket)
		}
		wg.Wait()
	} else {
		runSharded(len(m.resolved), w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next, moved, arrived := model.PlanStep(m.resolved[i], now, m.tick)
				plans[i] = stepPlan{next: next, moved: moved, arrived: arrived}
			}
		})
	}
	for i, node := range m.resolved {
		if plans[i].moved {
			node.setPos(plans[i].next)
		}
		if plans[i].arrived {
			model.CommitArrival(m.net, node)
		}
	}
	// Re-index every moved node in one batch: same-region cell moves shard
	// across the pool, boundary crossings commit serially in canonical
	// order, and the planner's region buckets (when built) are reused so
	// the commit never re-buckets (see Network.commitMoves).
	m.net.commitMoves(m.resolved, buckets)
	for i, node := range m.resolved {
		m.arm(m.resIdx[i], node)
	}
}

// bucketByRegion shards the resolved due set across w workers by the
// deterministic owner of each node's current grid region, reusing the
// bucket storage across ticks. Nodes of one region always land in one
// bucket, so the owning worker streams spatially-clustered SoA entries.
func (m *Mobility) bucketByRegion(w int) [][]int32 {
	for len(m.planBuckets) < w {
		m.planBuckets = append(m.planBuckets, nil)
	}
	buckets := m.planBuckets[:w]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for i, node := range m.resolved {
		o := regionOwner(regionOf(node.cell), w)
		buckets[o] = append(buckets[o], int32(i))
	}
	return buckets
}

// Stop halts movement. Safe to call more than once.
func (m *Mobility) Stop() {
	m.active = false
	if m.event != nil {
		m.event.Cancel()
	}
	m.net.removeWaker(m)
}
