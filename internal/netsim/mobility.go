package netsim

import (
	"time"
)

// MobilityModel updates node positions each tick. Implementations keep any
// per-node state on the Node's waypoint fields or internally.
type MobilityModel interface {
	// Init is called once per node before the first step.
	Init(n *Network, node *Node)
	// Step advances node by dt of virtual time.
	Step(n *Network, node *Node, dt time.Duration)
}

// RandomWaypoint is the classic ad-hoc mobility model: each node picks a
// uniform random destination in the field, moves toward it at a uniform
// random speed, pauses, and repeats.
type RandomWaypoint struct {
	// FieldW and FieldH bound the rectangular field in metres.
	FieldW, FieldH float64
	// SpeedMin and SpeedMax bound the uniform speed draw in metres/second.
	SpeedMin, SpeedMax float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

var _ MobilityModel = (*RandomWaypoint)(nil)

// Init picks the node's first waypoint.
func (m *RandomWaypoint) Init(n *Network, node *Node) {
	m.pick(n, node)
}

func (m *RandomWaypoint) pick(n *Network, node *Node) {
	rng := n.Sim().Rand()
	node.target = Position{X: rng.Float64() * m.FieldW, Y: rng.Float64() * m.FieldH}
	node.speed = m.SpeedMin + rng.Float64()*(m.SpeedMax-m.SpeedMin)
}

// Step moves the node toward its waypoint, pausing on arrival.
func (m *RandomWaypoint) Step(n *Network, node *Node, dt time.Duration) {
	now := n.Sim().Now()
	if now < node.pauseTo {
		return
	}
	dist := node.Pos.Dist(node.target)
	travel := node.speed * dt.Seconds()
	if travel >= dist {
		node.Pos = node.target
		node.pauseTo = now + m.Pause
		m.pick(n, node)
		return
	}
	frac := travel / dist
	node.Pos.X += (node.target.X - node.Pos.X) * frac
	node.Pos.Y += (node.target.Y - node.Pos.Y) * frac
}

// Static is a mobility model that never moves nodes. Useful for pinning
// infrastructure nodes while others roam.
type Static struct{}

var _ MobilityModel = Static{}

// Init implements MobilityModel.
func (Static) Init(*Network, *Node) {}

// Step implements MobilityModel.
func (Static) Step(*Network, *Node, time.Duration) {}

// Waypath moves a node along a fixed sequence of positions at a constant
// speed, then stops. It models scripted walks such as a user approaching a
// cinema.
type Waypath struct {
	Points []Position
	Speed  float64

	next map[string]int
}

var _ MobilityModel = (*Waypath)(nil)

// Init implements MobilityModel.
func (m *Waypath) Init(n *Network, node *Node) {
	if m.next == nil {
		m.next = make(map[string]int)
	}
	m.next[node.ID] = 0
}

// Step implements MobilityModel.
func (m *Waypath) Step(n *Network, node *Node, dt time.Duration) {
	i := m.next[node.ID]
	if i >= len(m.Points) {
		return
	}
	target := m.Points[i]
	dist := node.Pos.Dist(target)
	travel := m.Speed * dt.Seconds()
	for travel >= dist {
		node.Pos = target
		travel -= dist
		i++
		m.next[node.ID] = i
		if i >= len(m.Points) {
			return
		}
		target = m.Points[i]
		dist = node.Pos.Dist(target)
	}
	if dist > 0 {
		frac := travel / dist
		node.Pos.X += (target.X - node.Pos.X) * frac
		node.Pos.Y += (target.Y - node.Pos.Y) * frac
	}
}

// Mobility attaches a model to a set of nodes and advances them on a fixed
// tick until stopped.
type Mobility struct {
	net    *Network
	model  MobilityModel
	nodes  []string
	tick   time.Duration
	event  *Event
	active bool
}

// StartMobility begins moving the given nodes under model every tick of
// virtual time. It returns a handle whose Stop halts movement.
func (n *Network) StartMobility(model MobilityModel, tick time.Duration, nodeIDs ...string) *Mobility {
	if tick <= 0 {
		tick = time.Second
	}
	m := &Mobility{net: n, model: model, nodes: nodeIDs, tick: tick, active: true}
	for _, id := range nodeIDs {
		if node := n.Node(id); node != nil {
			model.Init(n, node)
		}
	}
	m.schedule()
	return m
}

func (m *Mobility) schedule() {
	m.event = m.net.Sim().Schedule(m.tick, func() {
		if !m.active {
			return
		}
		for _, id := range m.nodes {
			if node := m.net.Node(id); node != nil && node.Up {
				m.model.Step(m.net, node, m.tick)
				// Keep the spatial index in step and advance the topology
				// epoch for any node the model actually moved.
				m.net.nodeMoved(node)
			}
		}
		m.schedule()
	})
}

// Stop halts movement. Safe to call more than once.
func (m *Mobility) Stop() {
	m.active = false
	if m.event != nil {
		m.event.Cancel()
	}
}
