package netsim

import (
	"container/heap"
	"math/bits"
)

// This file is the simulator's event queue: a hashed hierarchical timing
// wheel. The original binary heap (heapQueue below) pays O(log n) per
// schedule, and at a million beaconing hosts the heap itself becomes the
// tick bottleneck — every re-arm sifts through a seven-figure queue. The
// wheel makes scheduling O(1): an event hashes to a slot by its deadline,
// whole slots are drained as virtual time reaches them, and far-future
// events cascade down from coarser levels exactly once.
//
// Ordering contract (what every golden depends on): events fire in exactly
// (at, seq) order — earliest deadline first, insertion order within one
// instant — identical to the heap. The wheel guarantees it structurally:
// slots are drained in slot order, a drained slot's events are resolved
// through a small (at, seq) heap before any of them fires, and an event
// scheduled into the already-draining quantum goes straight into that heap.
// The heap stays in the tree as the differential oracle (NewSimHeap);
// TestWheelSchedulerMatchesHeapOracle and FuzzTimingWheelScheduler hold the
// two engines bit-identical.

// eventQueue is the simulator's pending-event store. Implementations must
// yield events in (at, seq) order and tolerate lazy cancellation (cancelled
// events are discarded, not fired).
type eventQueue interface {
	push(e *Event)
	// peek returns the earliest live event without removing it, discarding
	// cancelled events as it finds them; nil when the queue is empty.
	peek() *Event
	// pop removes and returns the earliest live event, or nil when empty.
	pop() *Event
	// len counts pending events, including cancelled ones not yet discarded.
	len() int
}

// heapQueue is the original binary-heap queue, kept verbatim behind the
// eventQueue interface as the wheel's differential oracle.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e *Event) { heap.Push(&q.h, e) }

func (q *heapQueue) peek() *Event {
	for q.h.Len() > 0 {
		if !q.h[0].canceled {
			return q.h[0]
		}
		heap.Pop(&q.h)
	}
	return nil
}

func (q *heapQueue) pop() *Event {
	if e := q.peek(); e != nil {
		heap.Pop(&q.h)
		return e
	}
	return nil
}

func (q *heapQueue) len() int { return q.h.Len() }

// Wheel geometry. Level 0 slots are schedQuantum (2^20ns ~ 1.05ms) wide;
// each higher level's slots are 256x coarser, so four levels cover
// 2^52ns (~52 days) of virtual time ahead of the clock. Events beyond the
// horizon wait in an overflow list and are re-placed when the top level
// turns over.
const (
	schedQuantumBits = 20
	schedLevelBits   = 8
	schedSlots       = 1 << schedLevelBits
	schedSlotMask    = schedSlots - 1
	schedLevels      = 4
)

// schedLevel is one wheel level: 256 buckets plus an occupancy bitmap so
// empty stretches are skipped word-at-a-time instead of slot-at-a-time.
type schedLevel struct {
	buckets [schedSlots][]*Event
	occ     [schedSlots / 64]uint64
}

func (l *schedLevel) put(idx int, e *Event) {
	l.buckets[idx] = append(l.buckets[idx], e)
	l.occ[idx>>6] |= 1 << (uint(idx) & 63)
}

// nextOccupied returns the smallest occupied bucket index >= from, or -1.
func (l *schedLevel) nextOccupied(from int) int {
	w := from >> 6
	word := l.occ[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(l.occ) {
			return -1
		}
		word = l.occ[w]
	}
}

// take removes and returns bucket idx's events (nil when empty).
func (l *schedLevel) take(idx int) []*Event {
	b := l.buckets[idx]
	if len(b) == 0 {
		return nil
	}
	l.buckets[idx] = nil
	l.occ[idx>>6] &^= 1 << (uint(idx) & 63)
	return b
}

// wheelQueue is the hashed hierarchical timing wheel.
type wheelQueue struct {
	levels [schedLevels]schedLevel
	// overflow holds events beyond the top level's horizon, re-placed when
	// the top level turns over (or when the wheel is otherwise empty).
	overflow []*Event
	// due holds the events of every already-reached slot, ordered by
	// (at, seq): the wheel's quantum is coarser than event deadlines, so the
	// current slot's events resolve their exact order through this heap.
	due eventHeap
	// cur is the next level-0 slot to drain: every event in slots < cur has
	// been moved into due (or fired), every pending event in the wheel is at
	// a slot >= cur.
	cur int64
	// count tracks all pending events (buckets + overflow + due), including
	// cancelled ones not yet discarded; inWheel counts buckets only.
	count   int
	inWheel int
}

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func (w *wheelQueue) len() int { return w.count }

func (w *wheelQueue) push(e *Event) {
	w.count++
	slot := int64(e.at) >> schedQuantumBits
	if slot < w.cur {
		// The clock is already inside (or past) this event's quantum: it
		// competes with the currently-draining slot on (at, seq) directly.
		heap.Push(&w.due, e)
		return
	}
	w.place(e, slot)
}

// place files an event at the finest level whose window covers its slot.
// Level l holds events whose slot, in level-l units, is within 256 of the
// clock's — so a bucket always maps to exactly one absolute slot and never
// mixes revolutions.
func (w *wheelQueue) place(e *Event, slot int64) {
	for l := 0; l < schedLevels; l++ {
		shift := uint(schedLevelBits * l)
		if (slot>>shift)-(w.cur>>shift) < schedSlots {
			w.levels[l].put(int((slot>>shift)&schedSlotMask), e)
			w.inWheel++
			return
		}
	}
	w.overflow = append(w.overflow, e)
}

func (w *wheelQueue) peek() *Event {
	for {
		for len(w.due) > 0 {
			if !w.due[0].canceled {
				return w.due[0]
			}
			heap.Pop(&w.due)
			w.count--
		}
		if w.count == 0 {
			return nil
		}
		w.advance()
	}
}

func (w *wheelQueue) pop() *Event {
	e := w.peek()
	if e == nil {
		return nil
	}
	heap.Pop(&w.due)
	w.count--
	return e
}

// advance moves the clock position forward until at least one slot has been
// drained into due, cascading coarser levels down at their boundaries and
// skipping empty stretches by bitmap. Callers guarantee count > 0.
func (w *wheelQueue) advance() {
	for {
		if w.inWheel == 0 && len(w.due) == 0 {
			// Only overflow events remain: jump straight to the horizon
			// boundary that re-admits the earliest of them instead of
			// turning the empty wheel billions of slots.
			min := int64(w.overflow[0].at) >> schedQuantumBits
			for _, e := range w.overflow[1:] {
				if s := int64(e.at) >> schedQuantumBits; s < min {
					min = s
				}
			}
			const topMask = 1<<(schedLevelBits*(schedLevels-1)) - 1
			if jump := min &^ topMask; jump > w.cur {
				w.cur = jump
			}
		}
		if w.cur&schedSlotMask == 0 {
			w.cascade()
		}
		if j := w.levels[0].nextOccupied(int(w.cur & schedSlotMask)); j >= 0 {
			w.drainSlot(j)
			w.cur = w.cur&^schedSlotMask + int64(j) + 1
			return
		}
		w.cur = w.cur&^schedSlotMask + schedSlots
	}
}

// cascade pulls down, for every level whose block boundary the clock sits
// on, the bucket covering the block just entered — its events re-place at a
// finer level (an event is pulled down at most schedLevels-1 times, so the
// amortized cost per event is O(1)). At the top level's boundary, overflow
// events that now fit the horizon re-enter the wheel.
func (w *wheelQueue) cascade() {
	for l := schedLevels - 1; l >= 1; l-- {
		shift := uint(schedLevelBits * l)
		if w.cur&(1<<shift-1) != 0 {
			continue
		}
		pulled := w.levels[l].take(int((w.cur >> shift) & schedSlotMask))
		w.inWheel -= len(pulled)
		for _, e := range pulled {
			w.place(e, int64(e.at)>>schedQuantumBits)
		}
	}
	if len(w.overflow) > 0 && w.cur&(1<<(schedLevelBits*(schedLevels-1))-1) == 0 {
		pending := w.overflow
		w.overflow = nil
		for _, e := range pending {
			w.place(e, int64(e.at)>>schedQuantumBits)
		}
	}
}

// drainSlot moves level-0 bucket idx into the due heap, keeping the
// bucket's capacity warm for the slots that reuse it.
func (w *wheelQueue) drainSlot(idx int) {
	l := &w.levels[0]
	b := l.buckets[idx]
	for i, e := range b {
		heap.Push(&w.due, e)
		b[i] = nil
	}
	w.inWheel -= len(b)
	l.buckets[idx] = b[:0]
	l.occ[idx>>6] &^= 1 << (uint(idx) & 63)
}
