package netsim

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the link-state property suite: CutLink / RestoreLink / SetUp
// (and partition groups) driven through random op sequences, with three
// properties checked against the retained linear oracle after every op:
//
//   - agreement: Connected matches connectedLinear for every pair;
//   - symmetry: Connected(a,b) == Connected(b,a), and cutting (a,b) is
//     the same op as cutting (b,a);
//   - idempotence: re-applying an op changes neither connectivity nor the
//     topology epoch (no-ops must not invalidate caches).

// connMatrix snapshots Connected over every ordered pair.
func connMatrix(net *Network, names []string) map[[2]string]bool {
	m := make(map[[2]string]bool, len(names)*len(names))
	for _, a := range names {
		for _, b := range names {
			m[[2]string{a, b}] = net.Connected(a, b)
		}
	}
	return m
}

// checkLinkState asserts agreement with the oracle and symmetry for every
// pair.
func checkLinkState(t *testing.T, net *Network, names []string, stage string) {
	t.Helper()
	for _, a := range names {
		for _, b := range names {
			got := net.Connected(a, b)
			if want := net.connectedLinear(a, b); got != want {
				t.Fatalf("%s: Connected(%s,%s)=%v, oracle %v", stage, a, b, got, want)
			}
			if rev := net.Connected(b, a); got != rev {
				t.Fatalf("%s: asymmetric connectivity %s-%s: %v vs %v", stage, a, b, got, rev)
			}
		}
	}
}

// linkOp is one randomized mutation; applyRev, when set, is the same op
// with swapped operands (for the symmetry property).
type linkOp struct {
	name            string
	apply, applyRev func(net *Network)
}

func randomLinkOp(rng *rand.Rand, names []string) linkOp {
	a := names[rng.Intn(len(names))]
	b := names[rng.Intn(len(names))]
	switch rng.Intn(4) {
	case 0:
		return linkOp{
			name:     fmt.Sprintf("CutLink(%s,%s)", a, b),
			apply:    func(n *Network) { n.CutLink(a, b) },
			applyRev: func(n *Network) { n.CutLink(b, a) },
		}
	case 1:
		return linkOp{
			name:     fmt.Sprintf("RestoreLink(%s,%s)", a, b),
			apply:    func(n *Network) { n.RestoreLink(a, b) },
			applyRev: func(n *Network) { n.RestoreLink(b, a) },
		}
	case 2:
		up := rng.Intn(2) == 0
		return linkOp{
			name:  fmt.Sprintf("SetUp(%s,%v)", a, up),
			apply: func(n *Network) { n.SetUp(a, up) },
		}
	default:
		g := rng.Intn(3)
		return linkOp{
			name:  fmt.Sprintf("SetPartitionGroup(%s,%d)", a, g),
			apply: func(n *Network) { n.SetPartitionGroup(a, g) },
		}
	}
}

// TestLinkStateProperties drives random op sequences over random mixed
// topologies, checking oracle agreement, symmetry, idempotence (second
// application is a connectivity and epoch no-op) and cut/restore inversion.
func TestLinkStateProperties(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := int64(trial + 900)
		sim := NewSim(seed)
		net := NewNetwork(sim)
		rng := rand.New(rand.NewSource(seed))
		names := randomField(net, rng, 14+rng.Intn(10), 250)
		checkLinkState(t, net, names, fmt.Sprintf("trial %d initial", trial))

		for step := 0; step < 60; step++ {
			op := randomLinkOp(rng, names)
			stage := fmt.Sprintf("trial %d step %d %s", trial, step, op.name)

			op.apply(net)
			checkLinkState(t, net, names, stage)
			after := connMatrix(net, names)
			epoch := net.TopologyEpoch()

			// Idempotence: the same op again is a no-op for connectivity
			// and must not advance the epoch (no spurious cache floods).
			op.apply(net)
			if net.TopologyEpoch() != epoch {
				t.Fatalf("%s: re-applying advanced the epoch %d -> %d", stage, epoch, net.TopologyEpoch())
			}
			if got := connMatrix(net, names); !equalMatrix(got, after) {
				t.Fatalf("%s: re-applying changed connectivity", stage)
			}

			// Operand symmetry for the link ops: (b,a) is the same op.
			if op.applyRev != nil {
				op.applyRev(net)
				if net.TopologyEpoch() != epoch {
					t.Fatalf("%s: swapped-operand op advanced the epoch", stage)
				}
				if got := connMatrix(net, names); !equalMatrix(got, after) {
					t.Fatalf("%s: swapped-operand op changed connectivity", stage)
				}
			}
		}
	}
}

// TestCutRestoreRoundTrip checks RestoreLink ∘ CutLink is the identity on
// connectivity, pair by pair, including with partitions active.
func TestCutRestoreRoundTrip(t *testing.T) {
	seed := int64(77)
	sim := NewSim(seed)
	net := NewNetwork(sim)
	rng := rand.New(rand.NewSource(seed))
	names := randomField(net, rng, 18, 220)
	for _, id := range names[:6] {
		net.SetPartitionGroup(id, 1+rng.Intn(2))
	}
	before := connMatrix(net, names)
	for i := 0; i < 40; i++ {
		a, b := names[rng.Intn(len(names))], names[rng.Intn(len(names))]
		net.CutLink(a, b)
		if net.Connected(a, b) || net.Connected(b, a) {
			t.Fatalf("cut %s-%s still connected", a, b)
		}
		checkLinkState(t, net, names, fmt.Sprintf("cut %d", i))
		net.RestoreLink(b, a) // restore with swapped operands: same link
		if got := connMatrix(net, names); !equalMatrix(got, before) {
			t.Fatalf("restore did not invert cut %s-%s", a, b)
		}
	}
}

func equalMatrix(a, b map[[2]string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
