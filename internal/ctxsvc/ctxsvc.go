// Package ctxsvc implements the context-awareness service of a logmob host.
//
// The paper: "Through the use of context-awareness techniques, the
// middleware should notify applications of their current context, so that
// they can adapt accordingly." The service holds typed context attributes
// (battery, bandwidth, link cost, location, CPU factor, connectivity),
// lets sensors update them, notifies subscribers whose predicates match, and
// keeps a bounded history per attribute.
package ctxsvc

import (
	"fmt"
	"time"
)

// Key names a context attribute. Well-known keys are defined below; apps may
// define their own.
type Key string

// Well-known context attribute keys.
const (
	// KeyBattery is the battery level in [0,1].
	KeyBattery Key = "battery"
	// KeyBandwidth is the current link bandwidth in bytes/second.
	KeyBandwidth Key = "bandwidth.bps"
	// KeyCostPerByte is the current link monetary cost per byte.
	KeyCostPerByte Key = "link.cost.byte"
	// KeyLatency is the current link round-trip latency in seconds.
	KeyLatency Key = "link.latency.s"
	// KeyLocation is a symbolic location name (e.g. "cinema-lobby").
	KeyLocation Key = "location"
	// KeyCPUFactor is the host's relative compute speed (1.0 = reference).
	KeyCPUFactor Key = "cpu.factor"
	// KeyConnectivity is the current link class name ("adhoc", "gprs", ...).
	KeyConnectivity Key = "connectivity"
	// KeyNeighborCount is the number of one-hop neighbors.
	KeyNeighborCount Key = "neighbors"
	// KeyLoss is the observed per-message loss probability in [0,1).
	KeyLoss Key = "link.loss"
	// KeyEnergyPerByte is the link's battery energy cost per byte.
	KeyEnergyPerByte Key = "link.energy.byte"
	// KeyRetryRate is the observed transport retry ratio (retries per send
	// attempt) over the last sensing window — the ack/retry layer's live
	// loss evidence.
	KeyRetryRate Key = "link.retry.rate"
)

// Value is a context attribute value: a number, a string, or both.
type Value struct {
	Num float64
	Str string
}

// Num returns a numeric value.
func Num(f float64) Value { return Value{Num: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Str: s} }

// String renders the value for tables and logs.
func (v Value) String() string {
	if v.Str != "" {
		if v.Num != 0 {
			return fmt.Sprintf("%s(%g)", v.Str, v.Num)
		}
		return v.Str
	}
	return fmt.Sprintf("%g", v.Num)
}

// Sample is one historical observation of an attribute.
type Sample struct {
	At    time.Duration
	Value Value
}

// Subscription handles cancellation of a Subscribe.
type Subscription struct {
	cancel func()
}

// Cancel stops delivery. Safe to call multiple times.
func (s *Subscription) Cancel() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

type subscriber struct {
	id   int
	pred func(Value) bool
	fn   func(Key, Value)
}

// Service is a host's context service. It is single-goroutine, like the
// simulation handlers that drive it; the middleware serialises access.
type Service struct {
	now     func() time.Duration
	histCap int
	attrs   map[Key]Value
	history map[Key][]Sample
	subs    map[Key][]subscriber
	nextID  int
}

// New returns a context service using now as its clock. histCap bounds the
// per-attribute history length (0 means 64).
func New(now func() time.Duration, histCap int) *Service {
	if histCap <= 0 {
		histCap = 64
	}
	return &Service{
		now:     now,
		histCap: histCap,
		attrs:   make(map[Key]Value),
		history: make(map[Key][]Sample),
		subs:    make(map[Key][]subscriber),
	}
}

// Set updates an attribute, records history and notifies matching
// subscribers.
func (s *Service) Set(k Key, v Value) {
	s.attrs[k] = v
	h := append(s.history[k], Sample{At: s.now(), Value: v})
	if len(h) > s.histCap {
		h = h[len(h)-s.histCap:]
	}
	s.history[k] = h
	for _, sub := range s.subs[k] {
		if sub.pred == nil || sub.pred(v) {
			sub.fn(k, v)
		}
	}
}

// SetNum is Set with a numeric value.
func (s *Service) SetNum(k Key, f float64) { s.Set(k, Num(f)) }

// SetStr is Set with a string value.
func (s *Service) SetStr(k Key, str string) { s.Set(k, Str(str)) }

// Get returns the current value of k.
func (s *Service) Get(k Key) (Value, bool) {
	v, ok := s.attrs[k]
	return v, ok
}

// GetNum returns the numeric value of k, or fallback if unset.
func (s *Service) GetNum(k Key, fallback float64) float64 {
	if v, ok := s.attrs[k]; ok {
		return v.Num
	}
	return fallback
}

// GetStr returns the string value of k, or fallback if unset.
func (s *Service) GetStr(k Key, fallback string) string {
	if v, ok := s.attrs[k]; ok && v.Str != "" {
		return v.Str
	}
	return fallback
}

// History returns up to n most recent samples of k, oldest first. n <= 0
// returns all retained samples.
func (s *Service) History(k Key, n int) []Sample {
	h := s.history[k]
	if n > 0 && len(h) > n {
		h = h[len(h)-n:]
	}
	out := make([]Sample, len(h))
	copy(out, h)
	return out
}

// Subscribe registers fn for updates of k whose value satisfies pred (nil
// pred matches everything). fn runs synchronously inside Set.
func (s *Service) Subscribe(k Key, pred func(Value) bool, fn func(Key, Value)) *Subscription {
	s.nextID++
	id := s.nextID
	s.subs[k] = append(s.subs[k], subscriber{id: id, pred: pred, fn: fn})
	return &Subscription{cancel: func() {
		list := s.subs[k]
		for i, sub := range list {
			if sub.id == id {
				s.subs[k] = append(list[:i], list[i+1:]...)
				return
			}
		}
	}}
}

// Keys returns all attribute keys currently set, in no particular order.
func (s *Service) Keys() []Key {
	out := make([]Key, 0, len(s.attrs))
	for k := range s.attrs {
		out = append(out, k)
	}
	return out
}
