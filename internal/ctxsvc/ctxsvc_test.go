package ctxsvc

import (
	"testing"
	"time"
)

func newSvc() (*Service, *time.Duration) {
	var now time.Duration
	return New(func() time.Duration { return now }, 4), &now
}

func TestSetGet(t *testing.T) {
	s, _ := newSvc()
	s.SetNum(KeyBattery, 0.8)
	s.SetStr(KeyLocation, "cinema-lobby")
	if got := s.GetNum(KeyBattery, -1); got != 0.8 {
		t.Errorf("GetNum = %v", got)
	}
	if got := s.GetStr(KeyLocation, ""); got != "cinema-lobby" {
		t.Errorf("GetStr = %q", got)
	}
	if got := s.GetNum("missing", 42); got != 42 {
		t.Errorf("fallback = %v", got)
	}
	if got := s.GetStr("missing", "dflt"); got != "dflt" {
		t.Errorf("fallback = %q", got)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get on missing key reported ok")
	}
	if len(s.Keys()) != 2 {
		t.Errorf("Keys = %v", s.Keys())
	}
}

func TestSubscribeNotifies(t *testing.T) {
	s, _ := newSvc()
	var got []float64
	s.Subscribe(KeyBattery, nil, func(k Key, v Value) { got = append(got, v.Num) })
	s.SetNum(KeyBattery, 0.9)
	s.SetNum(KeyBattery, 0.5)
	s.SetNum(KeyBandwidth, 100) // different key: no notification
	if len(got) != 2 || got[0] != 0.9 || got[1] != 0.5 {
		t.Errorf("notifications = %v", got)
	}
}

func TestSubscribePredicate(t *testing.T) {
	s, _ := newSvc()
	var fired int
	s.Subscribe(KeyBattery, func(v Value) bool { return v.Num < 0.2 }, func(Key, Value) { fired++ })
	s.SetNum(KeyBattery, 0.9)
	s.SetNum(KeyBattery, 0.1)
	s.SetNum(KeyBattery, 0.05)
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (low battery only)", fired)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	s, _ := newSvc()
	fired := 0
	sub := s.Subscribe(KeyBattery, nil, func(Key, Value) { fired++ })
	s.SetNum(KeyBattery, 0.5)
	sub.Cancel()
	sub.Cancel() // idempotent
	s.SetNum(KeyBattery, 0.4)
	if fired != 1 {
		t.Errorf("fired = %d after cancel", fired)
	}
}

func TestMultipleSubscribersAndSelectiveCancel(t *testing.T) {
	s, _ := newSvc()
	var a, b int
	subA := s.Subscribe(KeyBattery, nil, func(Key, Value) { a++ })
	s.Subscribe(KeyBattery, nil, func(Key, Value) { b++ })
	s.SetNum(KeyBattery, 1)
	subA.Cancel()
	s.SetNum(KeyBattery, 2)
	if a != 1 || b != 2 {
		t.Errorf("a=%d b=%d", a, b)
	}
}

func TestHistoryBounded(t *testing.T) {
	s, now := newSvc() // histCap 4
	for i := 1; i <= 6; i++ {
		*now = time.Duration(i) * time.Second
		s.SetNum(KeyBattery, float64(i))
	}
	h := s.History(KeyBattery, 0)
	if len(h) != 4 {
		t.Fatalf("history len = %d, want 4", len(h))
	}
	if h[0].Value.Num != 3 || h[3].Value.Num != 6 {
		t.Errorf("history = %+v", h)
	}
	if h[0].At != 3*time.Second {
		t.Errorf("timestamp = %v", h[0].At)
	}
	h2 := s.History(KeyBattery, 2)
	if len(h2) != 2 || h2[0].Value.Num != 5 {
		t.Errorf("History(2) = %+v", h2)
	}
}

// TestPredicateFiresExactlyOncePerMatchingUpdate pins the delivery
// contract the adaptation loop depends on: one Set = at most one callback
// per subscription, matching updates only, no replays of history and no
// cross-key leakage — even with several live subscriptions on the same key.
func TestPredicateFiresExactlyOncePerMatchingUpdate(t *testing.T) {
	s, _ := newSvc()
	lowFired, allFired := 0, 0
	s.Subscribe(KeyBattery, func(v Value) bool { return v.Num < 0.2 }, func(Key, Value) { lowFired++ })
	s.Subscribe(KeyBattery, nil, func(Key, Value) { allFired++ })
	updates := []float64{0.9, 0.15, 0.15, 0.5, 0.1, 0.3}
	matching := 0
	for _, v := range updates {
		if v < 0.2 {
			matching++
		}
		s.SetNum(KeyBattery, v)
	}
	// Re-setting the same value is still one update; unrelated keys fire
	// nothing.
	s.SetNum(KeyBandwidth, 0.05)
	if lowFired != matching {
		t.Errorf("predicate fired %d times for %d matching updates", lowFired, matching)
	}
	if allFired != len(updates) {
		t.Errorf("nil predicate fired %d times for %d updates", allFired, len(updates))
	}
	// A subscriber added after N updates must not see them replayed.
	late := 0
	s.Subscribe(KeyBattery, nil, func(Key, Value) { late++ })
	if late != 0 {
		t.Errorf("late subscriber replayed %d historical updates", late)
	}
	s.SetNum(KeyBattery, 0.6)
	if late != 1 {
		t.Errorf("late subscriber fired %d times for one update", late)
	}
}

func TestHistoryIsCopy(t *testing.T) {
	s, _ := newSvc()
	s.SetNum(KeyBattery, 1)
	h := s.History(KeyBattery, 0)
	h[0].Value.Num = 99
	if got := s.History(KeyBattery, 0)[0].Value.Num; got != 1 {
		t.Errorf("history mutated through returned slice: %v", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Num(1.5), "1.5"},
		{Str("adhoc"), "adhoc"},
		{Value{Num: 2, Str: "x"}, "x(2)"},
		{Value{}, "0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDefaultHistCap(t *testing.T) {
	s := New(func() time.Duration { return 0 }, 0)
	for i := 0; i < 100; i++ {
		s.SetNum(KeyBattery, float64(i))
	}
	if got := len(s.History(KeyBattery, 0)); got != 64 {
		t.Errorf("default cap = %d, want 64", got)
	}
}
