package wire

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// Fuzz value kinds, selected by script bytes. Keeping the set closed means
// a corpus entry fully determines the decode/encode sequence.
const (
	opUint = iota
	opInt
	opBool
	opByte
	opFloat
	opString
	opBytes
	opStringMap
	opBytesMap
	opStringSlice
	opCount
)

// decodeScript decodes one value per op from r and returns them. A latched
// reader error reports ok=false.
func decodeScript(r *Reader, ops []byte) (vals []any, ok bool) {
	for _, op := range ops {
		var v any
		switch op % opCount {
		case opUint:
			v = r.Uint()
		case opInt:
			v = r.Int()
		case opBool:
			v = r.Bool()
		case opByte:
			v = r.Byte()
		case opFloat:
			v = r.Float()
		case opString:
			v = r.String()
		case opBytes:
			v = r.Bytes()
		case opStringMap:
			v = r.StringMap()
		case opBytesMap:
			v = r.BytesMap()
		case opStringSlice:
			v = r.StringSlice()
		}
		if r.Err() != nil {
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, true
}

// encodeScript encodes vals back with the matching Put calls.
func encodeScript(ops []byte, vals []any) []byte {
	var b Buffer
	for i, op := range ops {
		switch op % opCount {
		case opUint:
			b.PutUint(vals[i].(uint64))
		case opInt:
			b.PutInt(vals[i].(int64))
		case opBool:
			b.PutBool(vals[i].(bool))
		case opByte:
			b.PutByte(vals[i].(byte))
		case opFloat:
			b.PutFloat(vals[i].(float64))
		case opString:
			b.PutString(vals[i].(string))
		case opBytes:
			b.PutBytes(vals[i].([]byte))
		case opStringMap:
			b.PutStringMap(vals[i].(map[string]string))
		case opBytesMap:
			b.PutBytesMap(vals[i].(map[string][]byte))
		case opStringSlice:
			b.PutStringSlice(vals[i].([]string))
		}
	}
	return b.Bytes()
}

// FuzzWireRoundTrip drives the decoder over arbitrary bytes (it must never
// panic — truncated and corrupt inputs latch an error instead) and, for
// inputs that decode cleanly, checks the codec's round-trip identity:
// encode(decode(x)) re-decodes to the same values and re-encodes to the
// identical bytes (one decode+encode normalises any non-minimal varints;
// after that the encoding is a fixed point).
func FuzzWireRoundTrip(f *testing.F) {
	// Seed corpus: one entry per value kind plus a mixed frame. Layout:
	// script length byte, script bytes, then the encoded payload.
	mk := func(ops []byte, fill func(*Buffer)) []byte {
		var b Buffer
		fill(&b)
		return append(append([]byte{byte(len(ops))}, ops...), b.Bytes()...)
	}
	f.Add(mk([]byte{opUint, opInt}, func(b *Buffer) { b.PutUint(300); b.PutInt(-7) }))
	f.Add(mk([]byte{opBool, opByte, opFloat}, func(b *Buffer) { b.PutBool(true); b.PutByte(0xfe); b.PutFloat(3.25) }))
	f.Add(mk([]byte{opString, opBytes}, func(b *Buffer) { b.PutString("beacon"); b.PutBytes([]byte{1, 2, 3}) }))
	f.Add(mk([]byte{opStringMap}, func(b *Buffer) { b.PutStringMap(map[string]string{"svc": "festival/info", "v": "2"}) }))
	f.Add(mk([]byte{opBytesMap}, func(b *Buffer) { b.PutBytesMap(map[string][]byte{"k": {9}}) }))
	f.Add(mk([]byte{opStringSlice}, func(b *Buffer) { b.PutStringSlice([]string{"a", "b", "c"}) }))
	f.Add([]byte{3, opUint, opString, opFloat, 0x80}) // deliberately truncated
	f.Add([]byte{1, opBytes, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nops := int(data[0] % 17)
		rest := data[1:]
		if len(rest) < nops {
			return
		}
		ops, payload := rest[:nops], rest[nops:]

		// Arbitrary-input decode: must not panic; errors are fine.
		vals, ok := decodeScript(NewReader(payload), ops)

		// Frame layer on the same raw bytes: must not panic and must not
		// fabricate data (a returned frame re-frames to a prefix-compatible
		// stream).
		if frame, err := ReadFrame(bytes.NewReader(payload)); err == nil {
			var out bytes.Buffer
			if _, werr := WriteFrame(&out, frame); werr != nil {
				t.Fatalf("WriteFrame of just-read frame failed: %v", werr)
			}
			back, rerr := ReadFrame(bytes.NewReader(out.Bytes()))
			if rerr != nil || !bytes.Equal(back, frame) {
				t.Fatalf("frame round trip changed payload: %v / %q vs %q", rerr, back, frame)
			}
		} else if err != io.EOF && frame != nil {
			t.Fatalf("ReadFrame returned both a frame and error %v", err)
		}

		if !ok {
			return
		}

		// Round-trip identity on the value layer.
		enc1 := encodeScript(ops, vals)
		r2 := NewReader(enc1)
		vals2, ok2 := decodeScript(r2, ops)
		if !ok2 {
			t.Fatalf("re-decode of canonical encoding failed: %v (ops=%v vals=%#v)", r2.Err(), ops, vals)
		}
		if err := r2.ExpectEOF(); err != nil {
			t.Fatalf("canonical encoding has trailing bytes: %v", err)
		}
		enc2 := encodeScript(ops, vals2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode∘decode is not a fixed point:\nops  %v\nenc1 %x\nenc2 %x", ops, enc1, enc2)
		}
	})
}

// FuzzReadFramePooled exercises the buffer-reuse contract of ReadFrameInto
// the way the transport read loops use it: one scratch buffer, drawn from
// the process-wide pool, recycled across every frame of a stream. The fuzz
// input is treated as a raw frame stream; a reference pass with
// fresh-allocating ReadFrame fixes the expected frame sequence, then several
// goroutines re-read the stream concurrently, each cycling its scratch
// through GetBuffer/PutBuffer. Run under -race this catches any aliasing
// between pooled buffers — two readers decoding into shared storage — and
// the copy checks catch a frame being scribbled on by the next read.
func FuzzReadFramePooled(f *testing.F) {
	stream := func(payloads ...[]byte) []byte {
		var out bytes.Buffer
		for _, p := range payloads {
			if _, err := WriteFrame(&out, p); err != nil {
				f.Fatal(err)
			}
		}
		return out.Bytes()
	}
	f.Add(stream([]byte("beacon"), nil, []byte("a longer payload to force scratch growth")))
	f.Add(stream(bytes.Repeat([]byte{0xab}, 4096), []byte{1}))
	f.Add([]byte{0x05, 1, 2})                   // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // header over MaxFrameLen
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference pass: fresh allocation per frame, copies retained.
		var want [][]byte
		ref := bytes.NewReader(data)
		for {
			frame, err := ReadFrame(ref)
			if err != nil {
				break
			}
			want = append(want, append([]byte(nil), frame...))
		}

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := GetBuffer()
				scratch := b.buf
				br := bytes.NewReader(data)
				var got [][]byte
				for {
					frame, err := ReadFrameInto(br, scratch)
					if err != nil {
						break
					}
					scratch = frame // reuse grown capacity, like the TCP read loop
					got = append(got, append([]byte(nil), frame...))
				}
				b.buf = scratch[:0]
				PutBuffer(b)
				if len(got) != len(want) {
					t.Errorf("pooled pass read %d frames, reference read %d", len(got), len(want))
					return
				}
				for i := range got {
					if !bytes.Equal(got[i], want[i]) {
						t.Errorf("frame %d: pooled read %x differs from reference %x", i, got[i], want[i])
					}
				}
			}()
		}
		wg.Wait()
	})
}
