package wire

import (
	"bytes"
	"io"
	"testing"
)

// Fuzz value kinds, selected by script bytes. Keeping the set closed means
// a corpus entry fully determines the decode/encode sequence.
const (
	opUint = iota
	opInt
	opBool
	opByte
	opFloat
	opString
	opBytes
	opStringMap
	opBytesMap
	opStringSlice
	opCount
)

// decodeScript decodes one value per op from r and returns them. A latched
// reader error reports ok=false.
func decodeScript(r *Reader, ops []byte) (vals []any, ok bool) {
	for _, op := range ops {
		var v any
		switch op % opCount {
		case opUint:
			v = r.Uint()
		case opInt:
			v = r.Int()
		case opBool:
			v = r.Bool()
		case opByte:
			v = r.Byte()
		case opFloat:
			v = r.Float()
		case opString:
			v = r.String()
		case opBytes:
			v = r.Bytes()
		case opStringMap:
			v = r.StringMap()
		case opBytesMap:
			v = r.BytesMap()
		case opStringSlice:
			v = r.StringSlice()
		}
		if r.Err() != nil {
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, true
}

// encodeScript encodes vals back with the matching Put calls.
func encodeScript(ops []byte, vals []any) []byte {
	var b Buffer
	for i, op := range ops {
		switch op % opCount {
		case opUint:
			b.PutUint(vals[i].(uint64))
		case opInt:
			b.PutInt(vals[i].(int64))
		case opBool:
			b.PutBool(vals[i].(bool))
		case opByte:
			b.PutByte(vals[i].(byte))
		case opFloat:
			b.PutFloat(vals[i].(float64))
		case opString:
			b.PutString(vals[i].(string))
		case opBytes:
			b.PutBytes(vals[i].([]byte))
		case opStringMap:
			b.PutStringMap(vals[i].(map[string]string))
		case opBytesMap:
			b.PutBytesMap(vals[i].(map[string][]byte))
		case opStringSlice:
			b.PutStringSlice(vals[i].([]string))
		}
	}
	return b.Bytes()
}

// FuzzWireRoundTrip drives the decoder over arbitrary bytes (it must never
// panic — truncated and corrupt inputs latch an error instead) and, for
// inputs that decode cleanly, checks the codec's round-trip identity:
// encode(decode(x)) re-decodes to the same values and re-encodes to the
// identical bytes (one decode+encode normalises any non-minimal varints;
// after that the encoding is a fixed point).
func FuzzWireRoundTrip(f *testing.F) {
	// Seed corpus: one entry per value kind plus a mixed frame. Layout:
	// script length byte, script bytes, then the encoded payload.
	mk := func(ops []byte, fill func(*Buffer)) []byte {
		var b Buffer
		fill(&b)
		return append(append([]byte{byte(len(ops))}, ops...), b.Bytes()...)
	}
	f.Add(mk([]byte{opUint, opInt}, func(b *Buffer) { b.PutUint(300); b.PutInt(-7) }))
	f.Add(mk([]byte{opBool, opByte, opFloat}, func(b *Buffer) { b.PutBool(true); b.PutByte(0xfe); b.PutFloat(3.25) }))
	f.Add(mk([]byte{opString, opBytes}, func(b *Buffer) { b.PutString("beacon"); b.PutBytes([]byte{1, 2, 3}) }))
	f.Add(mk([]byte{opStringMap}, func(b *Buffer) { b.PutStringMap(map[string]string{"svc": "festival/info", "v": "2"}) }))
	f.Add(mk([]byte{opBytesMap}, func(b *Buffer) { b.PutBytesMap(map[string][]byte{"k": {9}}) }))
	f.Add(mk([]byte{opStringSlice}, func(b *Buffer) { b.PutStringSlice([]string{"a", "b", "c"}) }))
	f.Add([]byte{3, opUint, opString, opFloat, 0x80}) // deliberately truncated
	f.Add([]byte{1, opBytes, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nops := int(data[0] % 17)
		rest := data[1:]
		if len(rest) < nops {
			return
		}
		ops, payload := rest[:nops], rest[nops:]

		// Arbitrary-input decode: must not panic; errors are fine.
		vals, ok := decodeScript(NewReader(payload), ops)

		// Frame layer on the same raw bytes: must not panic and must not
		// fabricate data (a returned frame re-frames to a prefix-compatible
		// stream).
		if frame, err := ReadFrame(bytes.NewReader(payload)); err == nil {
			var out bytes.Buffer
			if _, werr := WriteFrame(&out, frame); werr != nil {
				t.Fatalf("WriteFrame of just-read frame failed: %v", werr)
			}
			back, rerr := ReadFrame(bytes.NewReader(out.Bytes()))
			if rerr != nil || !bytes.Equal(back, frame) {
				t.Fatalf("frame round trip changed payload: %v / %q vs %q", rerr, back, frame)
			}
		} else if err != io.EOF && frame != nil {
			t.Fatalf("ReadFrame returned both a frame and error %v", err)
		}

		if !ok {
			return
		}

		// Round-trip identity on the value layer.
		enc1 := encodeScript(ops, vals)
		r2 := NewReader(enc1)
		vals2, ok2 := decodeScript(r2, ops)
		if !ok2 {
			t.Fatalf("re-decode of canonical encoding failed: %v (ops=%v vals=%#v)", r2.Err(), ops, vals)
		}
		if err := r2.ExpectEOF(); err != nil {
			t.Fatalf("canonical encoding has trailing bytes: %v", err)
		}
		enc2 := encodeScript(ops, vals2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode∘decode is not a fixed point:\nops  %v\nenc1 %x\nenc2 %x", ops, enc1, enc2)
		}
	})
}
