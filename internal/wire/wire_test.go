package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, math.MaxUint64}
	var b Buffer
	for _, v := range values {
		b.PutUint(v)
	}
	r := NewReader(b.Bytes())
	for _, want := range values {
		if got := r.Uint(); got != want {
			t.Errorf("Uint() = %d, want %d", got, want)
		}
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 63, -64, 64, -65, math.MaxInt64, math.MinInt64}
	var b Buffer
	for _, v := range values {
		b.PutInt(v)
	}
	r := NewReader(b.Bytes())
	for _, want := range values {
		if got := r.Int(); got != want {
			t.Errorf("Int() = %d, want %d", got, want)
		}
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
}

func TestIntPropertyRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		var b Buffer
		b.PutInt(v)
		r := NewReader(b.Bytes())
		return r.Int() == v && r.ExpectEOF() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintPropertyRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var b Buffer
		b.PutUint(v)
		r := NewReader(b.Bytes())
		return r.Uint() == v && r.ExpectEOF() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringBytesRoundTrip(t *testing.T) {
	var b Buffer
	b.PutString("hello")
	b.PutString("")
	b.PutBytes([]byte{1, 2, 3})
	b.PutBytes(nil)
	b.PutBool(true)
	b.PutBool(false)
	b.PutByte(0xAB)
	b.PutFloat(3.5)
	b.PutFloat(math.Inf(-1))

	r := NewReader(b.Bytes())
	if got := r.String(); got != "hello" {
		t.Errorf("String() = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String() = %q, want empty", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes() = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("Bytes() = %v, want empty", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte() = %#x", got)
	}
	if got := r.Float(); got != 3.5 {
		t.Errorf("Float() = %v", got)
	}
	if got := r.Float(); !math.IsInf(got, -1) {
		t.Errorf("Float() = %v, want -Inf", got)
	}
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
}

func TestStringPropertyRoundTrip(t *testing.T) {
	f := func(s string, p []byte) bool {
		var b Buffer
		b.PutString(s)
		b.PutBytes(p)
		r := NewReader(b.Bytes())
		gs := r.String()
		gp := r.Bytes()
		return gs == s && bytes.Equal(gp, p) && r.ExpectEOF() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringMapRoundTrip(t *testing.T) {
	m := map[string]string{"b": "2", "a": "1", "": "", "key": "value"}
	var b Buffer
	b.PutStringMap(m)
	r := NewReader(b.Bytes())
	got := r.StringMap()
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("StringMap() = %v, want %v", got, m)
	}
}

func TestStringMapDeterministic(t *testing.T) {
	m := map[string]string{"x": "1", "y": "2", "z": "3", "w": "4"}
	var first []byte
	for i := 0; i < 10; i++ {
		var b Buffer
		b.PutStringMap(m)
		if first == nil {
			first = append([]byte(nil), b.Bytes()...)
			continue
		}
		if !bytes.Equal(first, b.Bytes()) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

func TestBytesMapRoundTrip(t *testing.T) {
	m := map[string][]byte{"code": {1, 2}, "state": {}, "data": {0xFF}}
	var b Buffer
	b.PutBytesMap(m)
	r := NewReader(b.Bytes())
	got := r.BytesMap()
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
	if len(got) != len(m) {
		t.Fatalf("BytesMap() has %d entries, want %d", len(got), len(m))
	}
	for k, v := range m {
		if !bytes.Equal(got[k], v) {
			t.Errorf("BytesMap()[%q] = %v, want %v", k, got[k], v)
		}
	}
}

func TestStringSliceRoundTrip(t *testing.T) {
	ss := []string{"one", "", "three"}
	var b Buffer
	b.PutStringSlice(ss)
	r := NewReader(b.Bytes())
	got := r.StringSlice()
	if err := r.ExpectEOF(); err != nil {
		t.Fatalf("ExpectEOF: %v", err)
	}
	if !reflect.DeepEqual(got, ss) {
		t.Errorf("StringSlice() = %v, want %v", got, ss)
	}
}

func TestReaderTruncated(t *testing.T) {
	var b Buffer
	b.PutString("hello world")
	enc := b.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
	}
}

func TestReaderErrorLatching(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uint() // fails with ErrTruncated
	first := r.Err()
	if !errors.Is(first, ErrTruncated) {
		t.Fatalf("Err() = %v, want ErrTruncated", first)
	}
	// Subsequent reads must not change the latched error and must return
	// zero values.
	if got := r.String(); got != "" {
		t.Errorf("String() after error = %q", got)
	}
	if got := r.Float(); got != 0 {
		t.Errorf("Float() after error = %v", got)
	}
	if r.Err() != first {
		t.Error("latched error was replaced")
	}
}

func TestReaderTooLarge(t *testing.T) {
	var b Buffer
	b.PutUint(MaxBytesLen + 1)
	r := NewReader(b.Bytes())
	_ = r.Bytes()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("Err() = %v, want ErrTooLarge", r.Err())
	}
}

func TestReaderTrailing(t *testing.T) {
	var b Buffer
	b.PutUint(1)
	b.PutUint(2)
	r := NewReader(b.Bytes())
	_ = r.Uint()
	if err := r.ExpectEOF(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("ExpectEOF = %v, want ErrTrailing", err)
	}
}

func TestMapLengthBomb(t *testing.T) {
	// A claimed element count far beyond the actual payload must be
	// rejected, not allocated.
	var b Buffer
	b.PutUint(1 << 40)
	r := NewReader(b.Bytes())
	if m := r.StringMap(); m != nil {
		t.Errorf("StringMap() = %v, want nil", m)
	}
	if r.Err() == nil {
		t.Fatal("expected error for length bomb")
	}
}

func TestBytesDoesNotAliasInput(t *testing.T) {
	var b Buffer
	b.PutBytes([]byte{9, 9, 9})
	enc := append([]byte(nil), b.Bytes()...)
	r := NewReader(enc)
	got := r.Bytes()
	enc[1] = 0 // mutate input; decoded copy must be unaffected
	if got[0] != 9 || got[1] != 9 || got[2] != 9 {
		t.Errorf("Bytes() aliases reader input: %v", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAA}, 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if _, err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %v, want %v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("ReadFrame at end = %v, want io.EOF", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	trunc := bytes.NewBuffer(buf.Bytes()[:3])
	if _, err := ReadFrame(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrame = %v, want ErrTruncated", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr Buffer
	hdr.PutUint(MaxFrameLen + 1)
	if _, err := ReadFrame(bytes.NewBuffer(hdr.Bytes())); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ReadFrame = %v, want ErrTooLarge", err)
	}
}

func TestUintLen(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {math.MaxUint64, 10},
	}
	for _, c := range cases {
		if got := UintLen(c.v); got != c.want {
			t.Errorf("UintLen(%d) = %d, want %d", c.v, got, c.want)
		}
		var b Buffer
		b.PutUint(c.v)
		if b.Len() != c.want {
			t.Errorf("encoded len of %d = %d, want %d", c.v, b.Len(), c.want)
		}
	}
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.PutString("data")
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.PutUint(7)
	r := NewReader(b.Bytes())
	if got := r.Uint(); got != 7 {
		t.Errorf("Uint() = %d after reset reuse", got)
	}
}
