// Package wire implements the compact, self-describing binary encoding used
// for every structure that crosses a link in logmob.
//
// The middleware's experiments reason about traffic volume, airtime and
// monetary cost, so every on-wire byte must be attributable. wire gives all
// subsystems one deterministic codec: unsigned varints, zigzag-encoded signed
// varints, length-prefixed strings and byte slices, IEEE-754 floats and
// nested sub-buffers. Decoding is performed through a Reader that latches the
// first error, so call sites can decode a whole structure and check a single
// error at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Maximum sizes accepted by the decoder. These bound memory allocation when
// parsing frames received from untrusted peers.
const (
	// MaxBytesLen is the largest length-prefixed byte slice or string the
	// Reader will accept.
	MaxBytesLen = 64 << 20 // 64 MiB
	// MaxFrameLen is the largest frame ReadFrame will accept.
	MaxFrameLen = 64 << 20
)

// Decoding errors. ErrTruncated and friends are matched by callers with
// errors.Is.
var (
	// ErrTruncated reports that the buffer ended before a value was complete.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrTooLarge reports a length prefix exceeding the configured maximum.
	ErrTooLarge = errors.New("wire: length exceeds maximum")
	// ErrOverflow reports a varint wider than 64 bits.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrTrailing reports unconsumed bytes where a complete parse was expected.
	ErrTrailing = errors.New("wire: trailing bytes after value")
)

// Buffer is an append-only encoder. The zero value is an empty buffer ready
// to use.
type Buffer struct {
	buf []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{buf: make([]byte, 0, capacity)}
}

// bufferPool backs GetBuffer/PutBuffer. Encoding hot paths (kernel protocol
// frames, LMU packing, transport frames) build every message in a pooled
// buffer instead of allocating a fresh one per message.
var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer returns an empty Buffer from the process-wide pool. Callers must
// not retain the buffer's bytes past PutBuffer; copy anything that outlives
// the encode.
func GetBuffer() *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer returns b to the pool. Oversized buffers are dropped so one
// giant frame does not pin memory forever.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.buf) > 1<<20 {
		return
	}
	bufferPool.Put(b)
}

// Bytes returns the encoded bytes. The returned slice aliases the Buffer's
// internal storage; it is invalidated by further Put calls.
func (b *Buffer) Bytes() []byte { return b.buf }

// Len returns the number of encoded bytes so far.
func (b *Buffer) Len() int { return len(b.buf) }

// Reset truncates the buffer to zero length, retaining capacity.
func (b *Buffer) Reset() { b.buf = b.buf[:0] }

// PutUint encodes v as an unsigned varint.
func (b *Buffer) PutUint(v uint64) {
	b.buf = binary.AppendUvarint(b.buf, v)
}

// PutInt encodes v as a zigzag-encoded signed varint.
func (b *Buffer) PutInt(v int64) {
	b.buf = binary.AppendUvarint(b.buf, zigzag(v))
}

// PutBool encodes v as a single byte, 0 or 1.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
}

// PutByte appends a single raw byte.
func (b *Buffer) PutByte(v byte) {
	b.buf = append(b.buf, v)
}

// PutFloat encodes v as 8 little-endian bytes of its IEEE-754 representation.
func (b *Buffer) PutFloat(v float64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
}

// PutString encodes s as a varint length followed by its bytes.
func (b *Buffer) PutString(s string) {
	b.buf = binary.AppendUvarint(b.buf, uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// PutBytes encodes p as a varint length followed by its bytes.
func (b *Buffer) PutBytes(p []byte) {
	b.buf = binary.AppendUvarint(b.buf, uint64(len(p)))
	b.buf = append(b.buf, p...)
}

// PutRaw appends p verbatim, with no length prefix. It exists for framing
// layers that prepend a tag byte to an already-encoded payload.
func (b *Buffer) PutRaw(p []byte) {
	b.buf = append(b.buf, p...)
}

// Interning: short strings repeat endlessly on the wire — unit names,
// data-space keys, host names, service names. A small bounded table maps
// each such byte string to one canonical Go string, making the per-decode
// string allocations disappear. Lookups convert []byte keys without
// allocating; oversized strings bypass the table.
const (
	internMaxLen = 64
	internMaxTab = 1024
)

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

// InternBytes returns a canonical string with b's contents, allocating only
// the first time a given value is seen (while the table has room).
func InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < internMaxTab {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// Intern returns the canonical interned copy of s, for callers that retain
// many duplicate short strings decoded from the wire (host names, topics).
func Intern(s string) string {
	if len(s) == 0 || len(s) > internMaxLen {
		return s
	}
	internMu.RLock()
	c, ok := internTab[s]
	internMu.RUnlock()
	if ok {
		return c
	}
	internMu.Lock()
	if len(internTab) < internMaxTab {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// Packer is anything that can append its canonical encoding to a Buffer.
type Packer interface{ PackTo(b *Buffer) }

// PutPacked encodes p's packed form as a length-prefixed byte string,
// staging it through a pooled scratch buffer instead of materialising a
// fresh intermediate slice.
func (b *Buffer) PutPacked(p Packer) {
	s := GetBuffer()
	p.PackTo(s)
	b.PutBytes(s.Bytes())
	PutBuffer(s)
}

// PutStringMap encodes m sorted by key so that the encoding is deterministic.
func (b *Buffer) PutStringMap(m map[string]string) {
	b.PutUint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		b.PutString(k)
		b.PutString(m[k])
	}
}

// PutBytesMap encodes m (string to byte slice) sorted by key.
func (b *Buffer) PutBytesMap(m map[string][]byte) {
	b.PutUint(uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		b.PutString(k)
		b.PutBytes(m[k])
	}
}

// PutStringSlice encodes ss as a count followed by each string.
func (b *Buffer) PutStringSlice(ss []string) {
	b.PutUint(uint64(len(ss)))
	for _, s := range ss {
		b.PutString(s)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// sortStrings is insertion sort; key sets here are small and this avoids an
// import of sort for a single call site hot path.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Reader decodes values from a byte slice. The first decoding error is
// latched: all subsequent reads return zero values and Err reports the
// original error. This lets callers decode a full structure and perform a
// single error check.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// ExpectEOF latches ErrTrailing if any bytes remain undecoded.
func (r *Reader) ExpectEOF() error {
	if r.err == nil && r.off != len(r.buf) {
		r.fail(fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off))
	}
	return r.err
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uint decodes an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrTruncated)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Int decodes a zigzag-encoded signed varint.
func (r *Reader) Int() int64 {
	return unzigzag(r.Uint())
}

// Bool decodes a single byte as a boolean. Any nonzero byte is true.
func (r *Reader) Bool() bool {
	return r.Byte() != 0
}

// Byte decodes a single raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Float decodes 8 bytes as an IEEE-754 float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	return string(r.rawBytes())
}

// InternString decodes a length-prefixed string like String but interns the
// result: repeated wire strings (names, keys, topics) decode to one shared
// canonical string instead of a fresh allocation each time.
func (r *Reader) InternString() string {
	return InternBytes(r.rawBytes())
}

// Bytes decodes a length-prefixed byte slice. The result is a copy and does
// not alias the Reader's input.
func (r *Reader) Bytes() []byte {
	raw := r.rawBytes()
	if raw == nil {
		return nil
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// AliasBytes decodes a length-prefixed byte slice without copying: the
// result aliases the Reader's input and is only valid while that input is.
// Decoders that own their input (or whose product must not outlive it) use
// this to skip the per-value copy of Bytes.
func (r *Reader) AliasBytes() []byte {
	return r.rawBytes()
}

// rawBytes decodes a length prefix and returns the referenced sub-slice of
// the input without copying.
func (r *Reader) rawBytes() []byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLarge, n))
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// StringMap decodes a map encoded by Buffer.PutStringMap.
func (r *Reader) StringMap() map[string]string {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // every entry needs at least 2 bytes
		r.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil // don't allocate for the common empty map
	}
	m := make(map[string]string, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.InternString()
		m[k] = r.String()
	}
	return m
}

// BytesMap decodes a map encoded by Buffer.PutBytesMap.
func (r *Reader) BytesMap() map[string][]byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	m := make(map[string][]byte, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.String()
		m[k] = r.Bytes()
	}
	return m
}

// StringSlice decodes a slice encoded by Buffer.PutStringSlice.
func (r *Reader) StringSlice() []string {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.String())
	}
	return out
}

func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

func unzigzag(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// WriteFrame writes payload to w preceded by a varint length prefix and
// returns the total number of bytes written.
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	hdr := binary.AppendUvarint(nil, uint64(len(payload)))
	n1, err := w.Write(hdr)
	if err != nil {
		return n1, fmt.Errorf("wire: write frame header: %w", err)
	}
	n2, err := w.Write(payload)
	if err != nil {
		return n1 + n2, fmt.Errorf("wire: write frame payload: %w", err)
	}
	return n1 + n2, nil
}

// ReadFrame reads one length-prefixed frame from r. It returns io.EOF if the
// stream ends cleanly before a new frame begins.
func ReadFrame(r io.ByteReader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto is ReadFrame appending into buf[:0], reusing its capacity.
// The returned slice aliases buf's storage (when capacity sufficed): callers
// recycling a frame buffer across reads must finish with one frame before
// reading the next, and must copy anything they keep.
func ReadFrameInto(r io.ByteReader, buf []byte) ([]byte, error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	if length > MaxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, length)
	}
	// Grow with the bytes actually read instead of trusting the header: a
	// corrupt or hostile 2-byte stream can claim a MaxFrameLen frame, and
	// committing the full allocation before the first payload byte turns
	// that into a 64 MiB allocation per bad frame.
	payload := buf[:0]
	if cap(payload) == 0 {
		payload = make([]byte, 0, min(length, 64<<10))
	}
	for i := uint64(0); i < length; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("wire: read frame payload: %w", ErrTruncated)
		}
		payload = append(payload, b)
	}
	return payload, nil
}

// UintLen returns the encoded size in bytes of v as an unsigned varint.
func UintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
