// Package update implements the middleware's self-update loop.
//
// The paper: "Next generation middleware should be able to ... use COD
// techniques to dynamically update itself." Providers advertise the
// components they publish (with version attributes) through either discovery
// style; an Updater on each device periodically compares those
// advertisements against its local registry and fetches anything newer —
// Code On Demand applied to the middleware's own component base.
package update

import (
	"time"

	"logmob/internal/core"
	"logmob/internal/discovery"
	"logmob/internal/lmu"
	"logmob/internal/transport"
)

// ServicePrefix is the discovery service namespace for component
// advertisements: a unit named "codec/ogg" is advertised as
// "component/codec/ogg".
const ServicePrefix = "component/"

// VersionAttr is the advertisement attribute carrying the published version.
const VersionAttr = "version"

// Advertiser is the subset of discovery used to announce components
// (satisfied by *discovery.Beacon and *discovery.LookupClient via small
// adapters below).
type Advertiser interface {
	Advertise(ad discovery.Ad)
}

// beaconAdvertiser adapts *discovery.Beacon (whose Advertise matches
// directly).
type beaconAdvertiser struct{ b *discovery.Beacon }

func (a beaconAdvertiser) Advertise(ad discovery.Ad) { a.b.Advertise(ad) }

// lookupAdvertiser adapts *discovery.LookupClient, dropping the send error
// (renewals retry).
type lookupAdvertiser struct{ c *discovery.LookupClient }

func (a lookupAdvertiser) Advertise(ad discovery.Ad) { _ = a.c.Advertise(ad) }

// ViaBeacon wraps a Beacon as an Advertiser.
func ViaBeacon(b *discovery.Beacon) Advertiser { return beaconAdvertiser{b: b} }

// ViaLookup wraps a LookupClient as an Advertiser.
func ViaLookup(c *discovery.LookupClient) Advertiser { return lookupAdvertiser{c: c} }

// AdvertiseComponents announces every component the host currently
// publishes, with its newest version, under the component namespace.
// Call it again after publishing new versions.
func AdvertiseComponents(h *core.Host, adv Advertiser, ttl time.Duration) int {
	count := 0
	for _, name := range h.Published() {
		u, ok := h.Registry().Get(name)
		if !ok {
			continue
		}
		adv.Advertise(discovery.Ad{
			Service:  ServicePrefix + name,
			Provider: h.Addr(),
			Attrs:    map[string]string{VersionAttr: u.Manifest.Version},
			TTL:      ttl,
		})
		count++
	}
	return count
}

// Stats counts updater activity.
type Stats struct {
	Checks   int64
	Fetches  int64
	Updated  int64
	Failures int64
}

// Updater keeps a host's locally held components current with what the
// network advertises.
type Updater struct {
	host     *core.Host
	finder   discovery.Finder
	sched    transport.Scheduler
	interval time.Duration
	// OnUpdate, if set, observes each successful component update.
	OnUpdate func(name, provider, oldVersion, newVersion string)

	running bool
	cancel  func()
	stats   Stats
}

// New builds an updater that checks every interval using finder to learn
// about newer versions.
func New(h *core.Host, finder discovery.Finder, sched transport.Scheduler, interval time.Duration) *Updater {
	if interval <= 0 {
		interval = time.Minute
	}
	return &Updater{host: h, finder: finder, sched: sched, interval: interval}
}

// Stats returns a snapshot of the updater counters.
func (u *Updater) Stats() Stats { return u.stats }

// Start begins periodic checking. The first check runs immediately.
func (u *Updater) Start() {
	if u.running {
		return
	}
	u.running = true
	u.tick()
}

func (u *Updater) tick() {
	if !u.running {
		return
	}
	u.CheckNow()
	u.cancel = u.sched.After(u.interval, u.tick)
}

// Stop halts periodic checking.
func (u *Updater) Stop() {
	u.running = false
	if u.cancel != nil {
		u.cancel()
		u.cancel = nil
	}
}

// CheckNow performs one update pass over every locally held component.
func (u *Updater) CheckNow() {
	u.stats.Checks++
	seen := map[string]string{} // name -> newest local version
	for _, m := range u.host.Registry().List() {
		if m.Kind != lmu.KindComponent {
			continue
		}
		if v, ok := seen[m.Name]; !ok || lmu.CompareVersions(m.Version, v) > 0 {
			seen[m.Name] = m.Version
		}
	}
	for name, localVersion := range seen {
		name, localVersion := name, localVersion
		u.finder.Find(discovery.Query{Service: ServicePrefix + name}, func(ads []discovery.Ad) {
			best := bestAd(ads, localVersion)
			if best == nil {
				return
			}
			remote := best.Attrs[VersionAttr]
			u.stats.Fetches++
			u.host.Fetch(best.Provider, name, remote, func(unit *lmu.Unit, err error) {
				if err != nil {
					u.stats.Failures++
					return
				}
				u.stats.Updated++
				if u.OnUpdate != nil {
					u.OnUpdate(name, best.Provider, localVersion, unit.Manifest.Version)
				}
			})
		})
	}
}

// bestAd returns the advertisement with the highest version strictly newer
// than local, or nil.
func bestAd(ads []discovery.Ad, local string) *discovery.Ad {
	var best *discovery.Ad
	for i := range ads {
		v := ads[i].Attrs[VersionAttr]
		if v == "" || lmu.CompareVersions(v, local) <= 0 {
			continue
		}
		if best == nil || lmu.CompareVersions(v, best.Attrs[VersionAttr]) > 0 {
			best = &ads[i]
		}
	}
	return best
}
