package update

import (
	"testing"
	"time"

	"logmob/internal/app"
	"logmob/internal/core"
	"logmob/internal/discovery"
	"logmob/internal/netsim"
	"logmob/internal/security"
	"logmob/internal/transport"
)

// rig wires a repo host and a device host with beacons on a shared ad-hoc
// network.
type rig struct {
	sim        *netsim.Sim
	net        *netsim.Network
	id         *security.Identity
	repo, dev  *core.Host
	repoBeacon *discovery.Beacon
	devBeacon  *discovery.Beacon
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := netsim.NewSim(2)
	net := netsim.NewNetwork(sim)
	sn := transport.NewSimNetwork(net)
	id := security.MustNewIdentity("publisher")
	trust := security.NewTrustStore()
	trust.TrustIdentity(id)

	mk := func(name string, x float64) (*core.Host, *discovery.Beacon) {
		class := netsim.AdHoc
		class.Loss = 0
		net.AddNode(name, netsim.Position{X: x}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := core.NewHost(core.Config{Name: name, Endpoint: ep, Scheduler: sim, Trust: trust})
		if err != nil {
			t.Fatal(err)
		}
		b := discovery.NewBeacon(h.Mux().Channel(transport.ChanBeacon), sim, 2*time.Second)
		b.Start()
		return h, b
	}
	r := &rig{sim: sim, net: net, id: id}
	r.repo, r.repoBeacon = mk("repo", 0)
	r.dev, r.devBeacon = mk("dev", 10)
	return r
}

func TestAdvertiseComponents(t *testing.T) {
	r := newRig(t)
	if err := r.repo.Publish(app.BuildCodec(r.id, "ogg", "1.0", 256)); err != nil {
		t.Fatal(err)
	}
	if err := r.repo.Publish(app.BuildCodec(r.id, "mp3", "2.0", 256)); err != nil {
		t.Fatal(err)
	}
	n := AdvertiseComponents(r.repo, ViaBeacon(r.repoBeacon), time.Minute)
	if n != 2 {
		t.Fatalf("advertised %d, want 2", n)
	}
	r.sim.RunFor(5 * time.Second)
	var got []discovery.Ad
	r.devBeacon.Find(discovery.Query{Service: ServicePrefix + app.CodecName("ogg")},
		func(ads []discovery.Ad) { got = ads })
	if len(got) != 1 || got[0].Attrs[VersionAttr] != "1.0" {
		t.Fatalf("ads = %+v", got)
	}
}

func TestUpdaterFetchesNewerVersion(t *testing.T) {
	r := newRig(t)
	// Device holds v1.0 locally; repo publishes v1.1 and advertises it.
	v10 := app.BuildCodec(r.id, "ogg", "1.0", 256)
	if err := r.dev.Registry().Put(v10); err != nil {
		t.Fatal(err)
	}
	v11 := app.BuildCodec(r.id, "ogg", "1.1", 256)
	if err := r.repo.Publish(v11); err != nil {
		t.Fatal(err)
	}
	AdvertiseComponents(r.repo, ViaBeacon(r.repoBeacon), time.Minute)
	r.sim.RunFor(5 * time.Second) // beacon propagates

	var updates []string
	up := New(r.dev, r.devBeacon, r.sim, 10*time.Second)
	up.OnUpdate = func(name, provider, oldV, newV string) {
		updates = append(updates, name+" "+oldV+"->"+newV+" from "+provider)
	}
	up.Start()
	defer up.Stop()
	r.sim.RunFor(30 * time.Second)

	if len(updates) == 0 {
		t.Fatalf("no updates; stats = %+v", up.Stats())
	}
	got, ok := r.dev.Registry().GetAtLeast(app.CodecName("ogg"), "1.1")
	if !ok {
		t.Fatal("v1.1 not in device registry")
	}
	if got.Manifest.Version != "1.1" {
		t.Errorf("version = %s", got.Manifest.Version)
	}
	if s := up.Stats(); s.Updated == 0 || s.Checks == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUpdaterIgnoresOlderAndEqual(t *testing.T) {
	r := newRig(t)
	v20 := app.BuildCodec(r.id, "ogg", "2.0", 256)
	if err := r.dev.Registry().Put(v20); err != nil {
		t.Fatal(err)
	}
	// Repo only has an older version.
	if err := r.repo.Publish(app.BuildCodec(r.id, "ogg", "1.5", 256)); err != nil {
		t.Fatal(err)
	}
	AdvertiseComponents(r.repo, ViaBeacon(r.repoBeacon), time.Minute)
	r.sim.RunFor(5 * time.Second)

	up := New(r.dev, r.devBeacon, r.sim, 10*time.Second)
	up.Start()
	defer up.Stop()
	r.sim.RunFor(30 * time.Second)
	if s := up.Stats(); s.Fetches != 0 {
		t.Errorf("fetched a non-newer version: %+v", s)
	}
}

func TestUpdaterVerifiesFetchedUpdate(t *testing.T) {
	r := newRig(t)
	if err := r.dev.Registry().Put(app.BuildCodec(r.id, "ogg", "1.0", 256)); err != nil {
		t.Fatal(err)
	}
	// An untrusted publisher offers a "newer" version.
	mallory := security.MustNewIdentity("mallory")
	bad := app.BuildCodec(mallory, "ogg", "9.9", 256)
	if err := r.repo.Registry().Put(bad); err != nil {
		t.Fatal(err)
	}
	if err := r.repo.Publish(bad); err != nil {
		t.Fatal(err)
	}
	AdvertiseComponents(r.repo, ViaBeacon(r.repoBeacon), time.Minute)
	r.sim.RunFor(5 * time.Second)

	up := New(r.dev, r.devBeacon, r.sim, 10*time.Second)
	up.Start()
	defer up.Stop()
	r.sim.RunFor(30 * time.Second)

	if _, ok := r.dev.Registry().GetAtLeast(app.CodecName("ogg"), "9.9"); ok {
		t.Fatal("untrusted update installed")
	}
	if s := up.Stats(); s.Failures == 0 {
		t.Errorf("verification failure not counted: %+v", s)
	}
}

func TestUpdaterStops(t *testing.T) {
	r := newRig(t)
	up := New(r.dev, r.devBeacon, r.sim, time.Second)
	up.Start()
	r.sim.RunFor(5 * time.Second)
	checks := up.Stats().Checks
	up.Stop()
	r.sim.RunFor(10 * time.Second)
	if up.Stats().Checks != checks {
		t.Error("updater kept checking after Stop")
	}
}

func TestUpdaterViaLookup(t *testing.T) {
	// The same updater works against the centralised discovery style.
	sim := netsim.NewSim(4)
	net := netsim.NewNetwork(sim)
	sn := transport.NewSimNetwork(net)
	id := security.MustNewIdentity("publisher")
	trust := security.NewTrustStore()
	trust.TrustIdentity(id)

	mk := func(name string) *core.Host {
		net.AddNode(name, netsim.Position{}, netsim.LAN)
		ep, err := sn.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := core.NewHost(core.Config{Name: name, Endpoint: ep, Scheduler: sim, Trust: trust})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	lookupHost := mk("lookup")
	discovery.NewLookupServer(lookupHost.Mux().Channel(transport.ChanLookup), sim)
	repo := mk("repo")
	repoClient := discovery.NewLookupClient(repo.Mux().Channel(transport.ChanLookup), sim, "lookup")
	dev := mk("dev")
	devClient := discovery.NewLookupClient(dev.Mux().Channel(transport.ChanLookup), sim, "lookup")

	if err := dev.Registry().Put(app.BuildCodec(id, "ogg", "1.0", 256)); err != nil {
		t.Fatal(err)
	}
	if err := repo.Publish(app.BuildCodec(id, "ogg", "3.0", 256)); err != nil {
		t.Fatal(err)
	}
	AdvertiseComponents(repo, ViaLookup(repoClient), time.Minute)
	sim.RunFor(5 * time.Second)

	up := New(dev, devClient, sim, 10*time.Second)
	up.Start()
	defer up.Stop()
	sim.RunFor(30 * time.Second)

	if _, ok := dev.Registry().GetAtLeast(app.CodecName("ogg"), "3.0"); !ok {
		t.Fatalf("update via lookup service failed; stats %+v", up.Stats())
	}
}
