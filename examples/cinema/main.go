// Cinema example — the paper's "Location-Based Reconfigurability and
// Services": a user walks into a cinema; a geofence flips the device's
// location context; the middleware fetches the venue's ticket UI on demand
// and runs it. Walking back in later is a cache hit.
//
//	go run ./examples/cinema
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/app"
	"logmob/internal/netsim"
)

func main() {
	sim := logmob.NewSim(9)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	venue, err := logmob.NewIdentity("odeon")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(venue)

	mk := func(name string, pos logmob.Position) *logmob.Host {
		class := logmob.WLAN
		class.Range = 80
		net.AddNode(name, pos, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust,
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	cinemaPos := logmob.Position{X: 100, Y: 100}
	cinema := mk("cinema", cinemaPos)
	user := mk("phone", logmob.Position{X: 350, Y: 100})

	ui := app.BuildTicketUI(venue, 8, 12<<10)
	if err := cinema.Publish(ui); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cinema publishes %s@%s (%d bytes, signed by %q)\n\n",
		ui.Manifest.Name, ui.Manifest.Version, ui.Size(), ui.Sig.Signer)

	stop := app.StartGeofencing(net, "phone", user.Context(),
		[]app.Geofence{{Name: "cinema-lobby", Center: cinemaPos, Radius: 60}}, time.Second)
	defer stop()

	visit := 0
	app.AutoService(user, "cinema-lobby", "cinema", app.TicketUIName, "render",
		func(elapsed time.Duration, hit bool, err error) {
			if err != nil {
				log.Fatal(err)
			}
			visit++
			how := "fetched over the air"
			if hit {
				how = "already cached"
			}
			fmt.Printf("t=%-6v visit %d: ticket UI up in %v (%s)\n",
				sim.Now().Round(time.Second), visit, elapsed.Round(time.Millisecond), how)
		})

	// Walk in, leave, come back.
	net.StartMobility(&netsim.Waypath{
		Points: []logmob.Position{
			{X: 110, Y: 100}, // enter
			{X: 350, Y: 100}, // leave
			{X: 110, Y: 100}, // re-enter
		},
		Speed: 12,
	}, time.Second, "phone")

	sim.RunFor(5 * time.Minute)
	fmt.Printf("\nphone received %d bytes total; the second visit cost nothing\n",
		net.UsageOf("phone").BytesRecv)
}
