// Shopping example — the paper's "Shopping and Limiting Connectivity
// Costs": a shopping agent leaves the phone once, tours the vendors on the
// wired side, and returns with the best price; interactive browsing pays the
// GPRS link for every page.
//
//	go run ./examples/shopping
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/app"
)

const vendors = 6

func main() {
	fmt.Println("shopping for 'camera' across", vendors, "vendors, phone on GPRS")
	fmt.Println()

	maCost, maBest := shopWithAgent()
	csCost, csBest := shopByBrowsing()

	fmt.Printf("\n%-18s %-12s %-12s\n", "strategy", "best price", "phone bill $")
	fmt.Printf("%-18s %-12s %-12.4f\n", "mobile agent", fmt.Sprintf("%d.%02d", maBest/100, maBest%100), maCost)
	fmt.Printf("%-18s %-12s %-12.4f\n", "browsing (CS)", fmt.Sprintf("%d.%02d", csBest/100, csBest%100), csCost)
	fmt.Printf("\nthe agent's bill is one round trip regardless of vendor count;\nbrowsing pays per page, per vendor\n")
}

// vendorPrices is the shared price vector.
func vendorPrices() ([]string, map[string]map[string]float64) {
	names := make([]string, vendors)
	prices := make(map[string]map[string]float64, vendors)
	for i := range names {
		names[i] = fmt.Sprintf("shop-%d", i)
		prices[names[i]] = map[string]float64{"camera": 199.99 - float64(i*7)}
	}
	return names, prices
}

func buildWorld() (*logmob.Sim, *logmob.Network, *logmob.SimNetwork, *logmob.Identity, *logmob.TrustStore) {
	sim := logmob.NewSim(5)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)
	id, err := logmob.NewIdentity("user")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(id)
	return sim, net, sn, id, trust
}

func addHost(net *logmob.Network, sn *logmob.SimNetwork, sim *logmob.Sim,
	trust *logmob.TrustStore, name string, class logmob.LinkClass) *logmob.Host {
	net.AddNode(name, logmob.Position{}, class)
	ep, err := sn.Endpoint(name)
	if err != nil {
		log.Fatal(err)
	}
	h, err := logmob.NewHost(logmob.HostConfig{
		Name: name, Endpoint: ep, Scheduler: sim, Trust: trust,
	})
	if err != nil {
		log.Fatal(err)
	}
	return h
}

func shopWithAgent() (cost float64, bestCents int64) {
	sim, net, sn, id, trust := buildWorld()
	phone := addHost(net, sn, sim, trust, "phone", logmob.GPRS)
	names, prices := vendorPrices()
	for _, name := range names {
		vh := addHost(net, sn, sim, trust, name, logmob.LAN)
		app.SetupVendor(vh, prices[name], 2048)
		logmob.NewAgentPlatform(vh, logmob.AgentEnv{Seed: 1, ExtraCaps: app.VendorCaps})
	}

	var record logmob.AgentRecord
	plat := logmob.NewAgentPlatform(phone, logmob.AgentEnv{
		Seed: 2, ExtraCaps: app.VendorCaps,
		OnDone: func(r logmob.AgentRecord) { record = r },
	})
	shopper := &logmob.Unit{
		Manifest: logmob.Manifest{Name: "shopper", Version: "1.0", Kind: logmob.KindAgent, Publisher: "user"},
		Code:     app.ShopperProgram.Encode(),
		Data:     app.NewShopperData("phone", "camera", names),
	}
	id.SignCode(shopper)
	if _, err := plat.SpawnUnit(shopper, "main"); err != nil {
		log.Fatal(err)
	}
	sim.RunFor(20 * time.Minute)

	n := len(record.Stack)
	if n < 2 {
		log.Fatalf("shopper never returned: %+v", record)
	}
	bestIdx, cents := record.Stack[n-2], record.Stack[n-1]
	fmt.Printf("agent toured %d vendors, best: %s at %d.%02d\n",
		vendors, names[bestIdx], cents/100, cents%100)
	return net.UsageOf("phone").Cost, cents
}

func shopByBrowsing() (cost float64, bestCents int64) {
	sim, net, sn, _, trust := buildWorld()
	phone := addHost(net, sn, sim, trust, "phone", logmob.GPRS)
	names, prices := vendorPrices()
	for _, name := range names {
		vh := addHost(net, sn, sim, trust, name, logmob.LAN)
		app.SetupVendor(vh, prices[name], 2048)
	}
	var result app.BrowseResult
	app.BrowseCS(phone, names, "camera", 3, func(r app.BrowseResult) { result = r })
	sim.RunFor(time.Hour)
	fmt.Printf("browsed %d vendors x 3 pages each, best: %s at %d.%02d\n",
		vendors, names[result.BestVendor], result.BestCents/100, result.BestCents%100)
	return net.UsageOf("phone").Cost, result.BestCents
}
