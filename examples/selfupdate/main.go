// Self-update example — the paper's "Next generation middleware should
// be able to ... use COD techniques to dynamically update itself": a device
// holding codec v1.0 hears a beacon advertising v1.1 from a nearby kiosk and
// upgrades itself, verified against the publisher's signature.
//
//	go run ./examples/selfupdate
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/app"
	"logmob/internal/discovery"
	"logmob/internal/transport"
	"logmob/internal/update"
)

func main() {
	sim := logmob.NewSim(21)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	publisher, err := logmob.NewIdentity("codec-vendor")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(publisher)

	mk := func(name string, x float64) (*logmob.Host, *logmob.Beacon) {
		net.AddNode(name, logmob.Position{X: x}, logmob.AdHoc)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := discovery.NewBeacon(h.Mux().Channel(transport.ChanBeacon), sim, 3*time.Second)
		b.Start()
		return h, b
	}
	kiosk, kioskBeacon := mk("kiosk", 0)
	device, deviceBeacon := mk("device", 15)

	// The device shipped with codec v1.0.
	v10 := app.BuildCodec(publisher, "ogg", "1.0", 2048)
	if err := device.Registry().Put(v10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device holds %s v1.0\n", app.CodecName("ogg"))

	// The kiosk publishes and advertises v1.1.
	v11 := app.BuildCodec(publisher, "ogg", "1.1", 2048)
	if err := kiosk.Publish(v11); err != nil {
		log.Fatal(err)
	}
	update.AdvertiseComponents(kiosk, update.ViaBeacon(kioskBeacon), time.Minute)
	fmt.Println("kiosk advertises v1.1 over ad-hoc beacons")

	// The device's updater notices and upgrades itself.
	up := update.New(device, deviceBeacon, sim, 10*time.Second)
	up.OnUpdate = func(name, provider, oldV, newV string) {
		fmt.Printf("t=%-4v middleware self-update: %s %s -> %s (from %s, signature verified)\n",
			sim.Now().Round(time.Second), name, oldV, newV, provider)
	}
	up.Start()

	sim.RunFor(time.Minute)

	got, ok := device.Registry().GetAtLeast(app.CodecName("ogg"), "1.1")
	if !ok {
		log.Fatal("update never happened")
	}
	fmt.Printf("\ndevice now holds v%s; updater stats: %+v\n", got.Manifest.Version, up.Stats())
}
