// Offload example — the paper's "Distributing Computations and Exploiting
// Computational Resources": a weak device ships a CPU-bound job (prime
// counting) to a stronger host by Remote Evaluation and compares against
// running it locally.
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/app"
	"logmob/internal/core"
)

const (
	deviceRate = 250_000.0 // device speed: VM steps/second
	serverMult = 8.0       // the server is 8x faster
	primeN     = 2000
)

func main() {
	sim := logmob.NewSim(3)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	user, err := logmob.NewIdentity("user")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(user)

	mk := func(name string, class logmob.LinkClass, mutate func(*core.Config)) *logmob.Host {
		net.AddNode(name, logmob.Position{}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust, ServeEval: true,
			EvalFuel: 1 << 30,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		h, err := logmob.NewHost(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	mk("server", logmob.LAN, func(c *core.Config) { c.ComputeRate = deviceRate * serverMult })
	device := mk("device", logmob.WLAN, nil)

	job := app.BuildPrimeJob(user)

	// Local: run the same bytecode on the device and derive the time the
	// weak CPU would take.
	if err := device.Registry().Put(job); err != nil {
		log.Fatal(err)
	}
	stack, steps, err := device.RunComponentSteps("job/primes", "main", primeN)
	if err != nil {
		log.Fatal(err)
	}
	localTime := time.Duration(float64(steps) / deviceRate * float64(time.Second))
	fmt.Printf("local:   primes(%d) = %d in %d VM steps -> %.1fs on this device\n",
		primeN, stack[0], steps, localTime.Seconds())

	// Remote: ship the job; the server's ComputeRate delays the reply by
	// its (faster) compute time, and the link adds transfer time.
	start := sim.Now()
	var remoteTime time.Duration
	var remoteResult int64
	device.Eval("server", job, "main", []int64{primeN}, func(stack []int64, err error) {
		if err != nil {
			log.Fatal(err)
		}
		remoteResult = stack[0]
		remoteTime = sim.Now() - start
	})
	sim.RunFor(time.Hour)

	fmt.Printf("offload: primes(%d) = %d via REV to an %gx server -> %.1fs end to end\n",
		primeN, remoteResult, serverMult, remoteTime.Seconds())
	fmt.Printf("\nspeedup: %.1fx (job unit was %d bytes on the wire)\n",
		localTime.Seconds()/remoteTime.Seconds(), job.Size())
}
