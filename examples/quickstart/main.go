// Quickstart: a two-host simulated world exercising all four mobile-code
// paradigms through the public logmob facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
)

func main() {
	// A deterministic simulated world: one LAN server, one GPRS device.
	sim := logmob.NewSim(42)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	publisher, err := logmob.NewIdentity("publisher")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(publisher)

	mkHost := func(name string, class logmob.LinkClass) *logmob.Host {
		net.AddNode(name, logmob.Position{}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust, ServeEval: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	server := mkHost("server", logmob.LAN)
	device := mkHost("device", logmob.GPRS)

	// ---------------------------------------------------------------- CS
	server.RegisterService("greet", func(from string, args [][]byte) ([][]byte, error) {
		return [][]byte{[]byte("hello " + string(args[0]))}, nil
	})
	device.Call("server", "greet", [][]byte{[]byte("device")}, func(r [][]byte, err error) {
		must(err)
		fmt.Printf("CS   call reply: %s\n", r[0])
	})

	// --------------------------------------------------------------- COD
	// The server publishes a signed component; the device fetches and runs
	// it locally.
	mul := &logmob.Unit{
		Manifest: logmob.Manifest{
			Name: "tool/mul", Version: "1.0",
			Kind: logmob.KindComponent, Publisher: "publisher",
		},
		Code: logmob.MustAssemble(".entry main\nmain:\nmul\nhalt\n").Encode(),
	}
	publisher.Sign(mul)
	must(server.Publish(mul))
	device.Fetch("server", "tool/mul", "", func(u *logmob.Unit, err error) {
		must(err)
		stack, err := device.RunComponent("tool/mul", "main", 6, 7)
		must(err)
		fmt.Printf("COD  fetched %s@%s (%d bytes), local run: %v\n",
			u.Manifest.Name, u.Manifest.Version, u.Size(), stack)
	})

	// --------------------------------------------------------------- REV
	// The device ships code to the server and gets the result back.
	square := &logmob.Unit{
		Manifest: logmob.Manifest{
			Name: "job/square", Version: "1.0",
			Kind: logmob.KindRequest, Publisher: "publisher",
		},
		Code: logmob.MustAssemble(".entry main\nmain:\ndup\nmul\nhalt\n").Encode(),
	}
	publisher.Sign(square)
	device.Eval("server", square, "main", []int64{12}, func(stack []int64, err error) {
		must(err)
		fmt.Printf("REV  remote evaluation of square(12): %v\n", stack)
	})

	// ---------------------------------------------------------------- MA
	// A courier agent carries a message from device to server, migrating
	// with captured execution state.
	logmob.NewAgentPlatform(server, logmob.AgentEnv{Seed: 1})
	devPlat := logmob.NewAgentPlatform(device, logmob.AgentEnv{Seed: 2})
	server.OnMessage(func(from, topic string, data []byte) {
		fmt.Printf("MA   agent %s delivered [%s]: %q\n", from, topic, data)
	})
	courier := &logmob.Unit{
		Manifest: logmob.Manifest{
			Name: "courier", Version: "1.0",
			Kind: logmob.KindAgent, Publisher: "publisher",
		},
		Code: logmob.CourierProgram.Encode(),
		Data: logmob.NewCourierData("server", "sms", []byte("meet at 8")),
	}
	publisher.SignCode(courier) // code-only: the agent's state mutates en route
	if _, err := devPlat.SpawnUnit(courier, "main"); err != nil {
		log.Fatal(err)
	}

	// Drive the virtual clock.
	sim.RunFor(2 * time.Minute)

	// What did the device's link cost?
	usage := net.UsageOf("device")
	fmt.Printf("\ndevice link: %d B sent, %d B received, $%.4f, %.1fs airtime\n",
		usage.BytesSent, usage.BytesRecv, usage.Cost, usage.Airtime.Seconds())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
