// Codec example — the paper's "Limited Resources and Dynamic Update"
// scenario: a device with space for only a few codecs plays a skewed stream
// of audio formats, fetching decoders on demand and evicting cold ones.
//
//	go run ./examples/codec
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/app"
	"logmob/internal/registry"
)

const (
	formats = 12
	plays   = 60
	quota   = 3 // codecs' worth of storage
)

func main() {
	sim := logmob.NewSim(7)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	publisher, err := logmob.NewIdentity("codec-vendor")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(publisher)

	// Repository on the wired side.
	net.AddNode("repo", logmob.Position{}, logmob.LAN)
	repoEP, _ := sn.Endpoint("repo")
	repo, err := logmob.NewHost(logmob.HostConfig{
		Name: "repo", Endpoint: repoEP, Scheduler: sim, Trust: trust,
	})
	if err != nil {
		log.Fatal(err)
	}
	catalogue := app.CodecCatalogue(publisher, formats, 4<<10)
	for _, u := range catalogue {
		if err := repo.Publish(u); err != nil {
			log.Fatal(err)
		}
	}

	// The device: WLAN, tiny storage quota, LRU eviction.
	net.AddNode("device", logmob.Position{}, logmob.WLAN)
	devEP, _ := sn.Endpoint("device")
	devQuota := int64(quota) * int64(catalogue[0].Size())
	device, err := logmob.NewHost(logmob.HostConfig{
		Name: "device", Endpoint: devEP, Scheduler: sim, Trust: trust,
		Registry: logmob.NewRegistry(devQuota, registry.WithClock(sim.Now)),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("catalogue: %d codecs x %d bytes; device quota: %d bytes (%d codecs)\n\n",
		formats, catalogue[0].Size(), devQuota, quota)

	player := &app.Player{Host: device, Repo: "repo", Samples: 128}
	zipf := app.NewZipf(formats, 1.1, 7)
	var play func(i int)
	play = func(i int) {
		if i >= plays {
			return
		}
		format := fmt.Sprintf("fmt-%02d", zipf.Next())
		player.Play(format, func(checksum int64, hit bool, err error) {
			if err != nil {
				log.Fatalf("play %s: %v", format, err)
			}
			how := "fetched"
			if hit {
				how = "cache  "
			}
			if i < 12 || i == plays-1 {
				fmt.Printf("play %2d: %s via %s (checksum %d)\n", i, format, how, checksum)
			} else if i == 12 {
				fmt.Println("...")
			}
			play(i + 1)
		})
	}
	play(0)
	sim.RunFor(time.Hour)

	stats := device.Registry().Stats()
	usage := net.UsageOf("device")
	fmt.Printf("\n%d plays: %d fetches, %d cache hits (%.0f%%), %d evictions\n",
		player.Plays, player.Fetches, player.Hits,
		100*float64(player.Hits)/float64(player.Plays), stats.Evictions)
	fmt.Printf("device storage in use: %d / %d bytes\n", device.Registry().Used(), devQuota)
	fmt.Printf("link traffic: %d bytes (preloading all would store %d bytes)\n",
		usage.BytesRecv, int64(formats)*int64(catalogue[0].Size()))
}
