// Scenario: a declarative festival deployment through the public logmob
// facade — no internal packages. A crowd of short-range devices roams a
// field with a few fixed stages; store-carry-forward couriers cross the
// partitioned crowd; the whole thing replicates over several seeds in
// parallel and reports a mean±stddev table.
//
//	go run ./examples/scenario
//	go run ./examples/scenario -attendees 800 -seeds 5 -parallel 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"logmob"
)

func main() {
	attendees := flag.Int("attendees", 400, "crowd size")
	seeds := flag.Int("seeds", 3, "replicate seeds")
	parallel := flag.Int("parallel", 3, "replicates run concurrently")
	flag.Parse()

	multi := logmob.RunSeeds(1, *seeds, *parallel, func(seed int64) *logmob.ScenarioResult {
		spec := festival(*attendees)
		_, table := logmob.RunSpec(spec, seed)
		return &logmob.ScenarioResult{
			ID: "festival", Title: spec.Name, Tables: []*logmob.Table{table},
		}
	})

	for _, rep := range multi.Replicates {
		fmt.Printf("--- seed %d ---\n", rep.Seed)
		rep.Result.Render(os.Stdout)
	}
	if multi.Aggregate != nil {
		fmt.Printf("--- aggregate over %d seeds ---\n", len(multi.Replicates))
		multi.Aggregate.Render(os.Stdout)
	}
}

// festival declares the world: two stages at fixed points, a roaming crowd,
// beacon discovery everywhere, and a courier fleet as the workload.
func festival(attendees int) *logmob.Scenario {
	const (
		field = 700.0 // metres square
		radio = 40.0  // per-device radio range: a partitioned crowd
	)

	fleet := &logmob.CourierWorkload{
		Count:     4,
		TargetPop: "stage", SourcePop: "crowd",
		SrcMin: 150, SrcMax: 350,
		PayloadBytes: 200,
		NamePrefix:   "courier", TopicPrefix: "festival/courier",
	}

	return &logmob.Scenario{
		Name:  "Festival (public API)",
		Field: logmob.ScenarioField{Width: field, Height: field},
		Populations: []logmob.Population{
			{
				Name: "stage", Count: 2,
				Place:         logmob.PlacePoints{{X: field / 4, Y: field / 2}, {X: 3 * field / 4, Y: field / 2}},
				Link:          logmob.AdHoc,
				Range:         radio,
				AllowUnsigned: true,
				Agents:        true, MaxHops: 4096, ExtraCaps: logmob.GreedyGeoCaps,
				Beacon: 20 * time.Second,
				Ads:    []logmob.ServiceAd{{Service: "festival/info"}},
				AdSelf: "festival/",
			},
			{
				Name: "crowd", Count: attendees,
				Place:         logmob.PlaceUniform{},
				Link:          logmob.AdHoc,
				Range:         radio,
				AllowUnsigned: true,
				Agents:        true, AgentSeedOffset: 2, MaxHops: 4096, ExtraCaps: logmob.GreedyGeoCaps,
				Beacon: 20 * time.Second,
				Ads:    []logmob.ServiceAd{{Service: "presence"}},
				Mobility: &logmob.RandomWaypoint{
					FieldW: field, FieldH: field,
					SpeedMin: 1, SpeedMax: 5, Pause: 5 * time.Second,
				},
				MobilityTick: time.Second,
			},
		},
		Warmup:    time.Minute,
		Duration:  6 * time.Minute,
		Workloads: []logmob.ScenarioWorkload{fleet},
		Probes: []logmob.ScenarioProbe{
			logmob.MeanNeighborsProbe{Pop: "crowd"},
			logmob.BeaconTrafficProbe{},
			logmob.CoverageProbe{Pop: "crowd", Service: "festival/info"},
			logmob.AgentHopsProbe{Label: "courier hops / failed"},
			logmob.DeliveriesProbe{Of: fleet},
			logmob.NetTrafficProbe{},
		},
		TableTitle: fmt.Sprintf("Festival: %d attendees, %gx%gm field, range %gm",
			attendees, field, field, radio),
	}
}
