// Disaster example — the paper's "Communication in Disaster Scenarios": in
// a partitioned ad-hoc field, a courier agent carries a message hop by hop,
// waiting out partitions, while conventional end-to-end routing fails until
// a full path exists.
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/agent"
	"logmob/internal/baseline"
	"logmob/internal/netsim"
	"logmob/internal/security"
)

func main() {
	sim := logmob.NewSim(11)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	// A 400m line: src ... three roaming relays ... dst. Radio range 60m,
	// so there is never a contemporaneous end-to-end path; only node
	// mobility can ferry data across.
	class := logmob.AdHoc
	class.Range = 60

	platforms := make(map[string]*logmob.AgentPlatform)
	addNode := func(name string, pos logmob.Position) *logmob.Host {
		net.AddNode(name, pos, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim,
			Policy: security.Policy{AllowUnsigned: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		platforms[name] = logmob.NewAgentPlatform(h, logmob.AgentEnv{Seed: int64(len(platforms) + 1)})
		return h
	}

	src := addNode("field-post", logmob.Position{X: 0, Y: 50})
	dst := addNode("hospital", logmob.Position{X: 400, Y: 50})
	for i := 0; i < 3; i++ {
		addNode(fmt.Sprintf("relay-%d", i), logmob.Position{X: float64(100 + 100*i), Y: 50})
	}
	_ = src

	// Relays patrol the field; endpoints stay put.
	net.StartMobility(&netsim.RandomWaypoint{
		FieldW: 400, FieldH: 100, SpeedMin: 3, SpeedMax: 8, Pause: 2 * time.Second,
	}, time.Second, "relay-0", "relay-1", "relay-2")

	var agentDelivered time.Duration
	dst.OnMessage(func(from, topic string, data []byte) {
		agentDelivered = sim.Now()
		fmt.Printf("t=%-8v agent delivered to hospital: %q (carried by %s)\n",
			sim.Now().Round(time.Second), data, from)
	})

	// The conventional baseline: route end-to-end, retrying every second.
	// A retry only succeeds while a complete multi-hop path exists at send
	// time; in this sparse field that never happens.
	msgr := baseline.NewMessenger(net)
	msgr.Deadline = 10 * time.Minute
	routedAttempts := 0
	msgr.Send("field-post", "hospital", []byte("need supplies"),
		func(o baseline.MessageOutcome) {
			routedAttempts = o.Attempts
			fmt.Printf("t=%-8v end-to-end routing gave up: delivered=%v after %d attempts\n",
				sim.Now().Round(time.Second), o.Delivered, o.Attempts)
		})
	_ = routedAttempts

	// The agent: store-carry-forward courier.
	if _, err := platforms["field-post"].Spawn("courier", agent.CourierProgram,
		agent.NewCourierData("hospital", "disaster", []byte("need supplies")), "main"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("field: field-post --- relay x3 (roaming) --- hospital, range 60m over 400m")
	fmt.Println("running 10 simulated minutes...")
	sim.RunFor(11 * time.Minute)

	if agentDelivered > 0 {
		fmt.Printf("\ncourier agent delivered at t=%v; routing never had a full path\n",
			agentDelivered.Round(time.Second))
	} else {
		fmt.Println("\ncourier agent still in the field (increase the run time)")
	}
}
