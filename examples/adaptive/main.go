// Adaptive example — the paper's next-generation requirement that
// "different mobile code paradigms could be plugged-in dynamically and used
// when needed after assessment of the environment and application": the
// same task, executed three times as its shape and the device's context
// change, lands on three different paradigms.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"logmob"
	"logmob/internal/adapt"
	"logmob/internal/policy"
)

func main() {
	sim := logmob.NewSim(13)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	id, err := logmob.NewIdentity("publisher")
	if err != nil {
		log.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(id)

	mk := func(name string, class logmob.LinkClass) *logmob.Host {
		net.AddNode(name, logmob.Position{}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust, ServeEval: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	server := mk("server", logmob.LAN)
	device := mk("device", logmob.WLAN)

	// One capability, offered every way: a doubling tool.
	unit := &logmob.Unit{
		Manifest: logmob.Manifest{Name: "tool/double", Version: "1.0",
			Kind: logmob.KindComponent, Publisher: "publisher"},
		Code: logmob.MustAssemble(".entry main\nmain:\npush 2\nmul\nhalt\n").Encode(),
	}
	id.Sign(unit)
	if err := server.Publish(unit); err != nil {
		log.Fatal(err)
	}
	server.RegisterService("double", func(from string, args [][]byte) ([][]byte, error) {
		vals := adapt.DecodeArgs(args)
		for i := range vals {
			vals[i] *= 2
		}
		return adapt.EncodeReplies(vals), nil
	})

	runner := logmob.NewTaskRunner(device, nil)
	runTask := func(label string, interactions int64) {
		spec := &logmob.TaskSpec{
			Model: policy.Task{
				Interactions: interactions,
				ReqBytes:     16, ReplyBytes: 16,
				CodeBytes:   int64(unit.Size()),
				ResultBytes: 16,
			},
			Remote: "server", Service: "double",
			Unit: unit, Entry: "main", Args: []int64{21},
		}
		runner.Run(spec, func(out logmob.TaskOutcome, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-34s -> %-3s (%d round(s), result %v)\n",
				label, out.Paradigm, out.Rounds, out.Stack)
		})
		sim.RunFor(5 * time.Minute)
	}

	fmt.Println("the same capability, chosen by context assessment:")
	runTask("one-shot query", 1)
	runTask("steady use, 400 rounds", 400)

	// A compute-heavy pipeline with bulky intermediate results: chatting
	// (CS) would haul every intermediate over the link, running locally
	// (COD) would crawl on the weak CPU — shipping the code out once (REV)
	// wins.
	heavy := &logmob.TaskSpec{
		Model: policy.Task{
			Interactions: 10,
			ReqBytes:     64, ReplyBytes: 2048,
			CodeBytes:    int64(unit.Size()),
			ResultBytes:  64,
			ComputeUnits: 30, // seconds on the reference CPU
		},
		Remote: "server", Service: "double",
		Unit: unit, Entry: "main", Args: []int64{21},
	}
	device.Context().SetNum("cpu.factor", 0.2)        // weak device
	device.Context().SetNum("remote.cpu.factor", 8.0) // strong server
	runner.Run(heavy, func(out logmob.TaskOutcome, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s -> %-3s (%d round(s), result %v)\n",
			"compute pipeline on a weak device", out.Paradigm, out.Rounds, out.Stack)
	})
	sim.RunFor(5 * time.Minute)

	fmt.Printf("\nexecutions by paradigm: %v\n", runner.Executions())
}
