// Adaptive example — the paper's next-generation requirement that
// "different mobile code paradigms could be plugged-in dynamically and used
// when needed after assessment of the environment and application", on the
// public API only: a declarative scenario senses a degrading link into each
// device's context service, and per-device adaptation engines re-select the
// paradigm per interaction — Client/Server while the link is clean, a
// ship-once paradigm as loss climbs, the frugal choice as the battery
// drains.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"time"

	"logmob"
)

func main() {
	// The task stream: a chatty control exchange against a comparatively
	// heavy code bundle. Clean link: chatting is cheapest. Lossy link: the
	// six message legs per task hurt and shipping the code once wins.
	task := logmob.ParadigmTask{
		Interactions: 3, ReqBytes: 24, ReplyBytes: 24,
		CodeBytes: 1200, StateBytes: 120, ResultBytes: 16,
	}

	stream := &logmob.AdaptiveWorkload{
		Pop: "device", ServerPop: "station",
		Model:        task,
		Gap:          2 * time.Second,
		FreshCode:    true,
		BatteryAware: true,
		Objective:    logmob.ParadigmObjective{BytesWeight: 0.3, LatencyWeight: 600, EnergyWeight: 0.3},
		Label:        "adaptive",
	}

	spec := &logmob.Scenario{
		Name:  "adaptive quickstart",
		Field: logmob.ScenarioField{Width: 100, Height: 100},
		Populations: []logmob.Population{
			{
				Name: "station", Place: logmob.PlacePoints{{X: 50, Y: 50}},
				Link: logmob.WLAN, Range: 200,
				AllowUnsigned: true, Agents: true,
			},
			{
				Name: "device", Count: 2,
				Place: logmob.PlacePoints{{X: 60, Y: 50}, {X: 40, Y: 50}},
				Link:  logmob.WLAN, Range: 200,
				AllowUnsigned: true, Agents: true, AgentSeedOffset: 1,
				EnergyBudget: 3e5, // a battery: traffic energy drains it
			},
		},
		Warmup:   5 * time.Second,
		Duration: 4 * time.Minute,
		// The adversity layer degrades the link mid-run; the sensing layer
		// samples what the devices actually experience every 2 seconds.
		Faults: logmob.ScenarioFaults{
			Retry: logmob.RetryFault{Budget: 3, Timeout: time.Second},
			Events: []logmob.FaultEvent{
				{At: 90 * time.Second, Loss: 0.35, JitterTicks: 2},
			},
		},
		Sense:     logmob.ScenarioSense{Tick: 2 * time.Second},
		Workloads: []logmob.ScenarioWorkload{stream},
		Probes:    []logmob.ScenarioProbe{logmob.DecisionsProbe{Of: stream}},
	}

	world, table := logmob.RunSpec(spec, 42)
	fmt.Println("the same task stream, re-decided per interaction as the world degrades:")
	table.Render(os.Stdout)

	done := stream.Stats.ByParadigm
	fmt.Printf("\ncompletions by paradigm: CS=%d REV=%d COD=%d MA=%d (of %d tasks)\n",
		done[logmob.CS], done[logmob.REV], done[logmob.COD], done[logmob.MA], stream.Stats.Completed)
	for _, eng := range stream.Engines() {
		if h := eng.History(); len(h) > 0 {
			fmt.Printf("an engine's first/last decisions: %s@%v -> %s@%v (%d switches)\n",
				h[0].Paradigm, h[0].At, h[len(h)-1].Paradigm, h[len(h)-1].At, eng.Switches())
			break
		}
	}
	fmt.Printf("device battery left: %.0f%%\n", 100*world.Net.BatteryLevel("device0"))
}
