// Benchmarks regenerating every experiment table/figure (one benchmark per
// experiment, named after its ID) plus micro-benchmarks of the middleware's
// hot paths.
//
//	go test -bench=. -benchmem
package logmob_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"logmob/internal/agent"
	"logmob/internal/core"
	"logmob/internal/ctxsvc"
	"logmob/internal/discovery"
	"logmob/internal/lmu"
	"logmob/internal/netsim"
	"logmob/internal/policy"
	"logmob/internal/registry"
	"logmob/internal/security"
	"logmob/internal/sim"
	"logmob/internal/transport"
	"logmob/internal/vm"
	"logmob/internal/wire"
)

// benchExperiment runs one full experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := sim.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(int64(i + 1))
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkT1ParadigmTraffic(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkT2CodecCOD(b *testing.B)        { benchExperiment(b, "T2") }
func BenchmarkT3Disaster(b *testing.B)        { benchExperiment(b, "T3") }
func BenchmarkT4DisasterLatency(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkT5Shopping(b *testing.B)        { benchExperiment(b, "T5") }
func BenchmarkT6Offload(b *testing.B)         { benchExperiment(b, "T6") }
func BenchmarkT7Discovery(b *testing.B)       { benchExperiment(b, "T7") }
func BenchmarkT8Security(b *testing.B)        { benchExperiment(b, "T8") }
func BenchmarkT9Cinema(b *testing.B)          { benchExperiment(b, "T9") }
func BenchmarkT10Micro(b *testing.B)          { benchExperiment(b, "T10") }
func BenchmarkA1Eviction(b *testing.B)        { benchExperiment(b, "A1") }
func BenchmarkA2Decider(b *testing.B)         { benchExperiment(b, "A2") }

// --- middleware hot paths ---

// BenchmarkVMDispatch measures raw interpreter throughput.
func BenchmarkVMDispatch(b *testing.B) {
	prog := vm.MustAssemble(`
.entry main
main:
	store 0
loop:
	load 0
	jz done
	load 0
	push 1
	sub
	store 0
	jmp loop
done:
	halt
`)
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		m, err := vm.New(prog, nil, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SetEntry("main", 1000); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkVMSnapshotRestore measures the strong-mobility primitive.
func BenchmarkVMSnapshotRestore(b *testing.B) {
	prog := vm.MustAssemble(`
.globals 8
.entry main
main:
	push 11
	call inner
	halt
inner:
	store 5
	push 99
	gstore 3
	push 1000000
	host pause
	ret
`)
	host := vm.NewHostTable()
	host.Register(vm.HostFunc{Name: "pause", Arity: 1,
		Fn: func(*vm.Machine, []int64) ([]int64, int64, error) { return nil, 1, nil }})
	m, err := vm.New(prog, host, 1000)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.SetEntry("main"); err != nil {
		b.Fatal(err)
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := m.Snapshot()
		if _, err := vm.Restore(prog, host, 1000, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMEval measures one REV-style evaluation the way a serving host
// runs it: reinitialise a reused Machine for an already-assembled program,
// enter main with an argument and run to halt. Reinit instead of vm.New is
// the scratch-reuse path core takes for every repeat Eval of a cached
// program.
func BenchmarkVMEval(b *testing.B) {
	prog := vm.MustAssemble(`
.entry main
main:
	store 0
	push 0
loop:
	load 0
	jz done
	load 0
	add
	load 0
	push 1
	sub
	store 0
	jmp loop
done:
	halt
`)
	m, err := vm.New(prog, nil, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reinit(prog, nil, 1<<20); err != nil {
			b.Fatal(err)
		}
		if err := m.SetEntry("main", 100); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrame measures the transport read loop's per-frame decode
// with a recycled scratch buffer (the ReadFrameInto path every TCP and mux
// reader uses).
func BenchmarkReadFrame(b *testing.B) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	var enc bytes.Buffer
	if _, err := wire.WriteFrame(&enc, payload); err != nil {
		b.Fatal(err)
	}
	data := enc.Bytes()
	br := bytes.NewReader(data)
	var buf []byte
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(data)
		frame, err := wire.ReadFrameInto(br, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = frame
	}
}

// BenchmarkLMUPackUnpack measures unit serialisation round trips (10KB unit).
func BenchmarkLMUPackUnpack(b *testing.B) {
	u := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "bench", Version: "1.0", Kind: lmu.KindComponent},
		Code:     make([]byte, 5<<10),
		Data:     map[string][]byte{"table": make([]byte, 5<<10)},
	}
	b.SetBytes(int64(u.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed := u.Pack()
		if _, err := lmu.Unpack(packed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignVerify measures the security path run on every foreign unit.
func BenchmarkSignVerify(b *testing.B) {
	id := security.MustNewIdentity("bench")
	trust := security.NewTrustStore()
	trust.TrustIdentity(id)
	u := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "bench", Version: "1.0", Kind: lmu.KindComponent, Publisher: "bench"},
		Code:     make([]byte, 10<<10),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id.Sign(u)
		if err := security.Verify(u, trust, security.Policy{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistry measures store churn under quota pressure.
func BenchmarkRegistry(b *testing.B) {
	units := make([]*lmu.Unit, 16)
	for i := range units {
		units[i] = &lmu.Unit{
			Manifest: lmu.Manifest{Name: string(rune('a' + i)), Version: "1.0", Kind: lmu.KindComponent},
			Code:     make([]byte, 1024),
		}
	}
	quota := int64(units[0].Size()) * 4
	r := registry.New(quota)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := units[i%len(units)]
		if err := r.Put(u); err != nil {
			b.Fatal(err)
		}
		r.Get(u.Manifest.Name)
	}
}

// BenchmarkKernelCallSim measures one CS round trip through the full kernel
// and simulator stack.
func BenchmarkKernelCallSim(b *testing.B) {
	s := netsim.NewSim(1)
	net := netsim.NewNetwork(s)
	sn := transport.NewSimNetwork(net)
	class := netsim.LAN
	mk := func(name string) *core.Host {
		net.AddNode(name, netsim.Position{}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			b.Fatal(err)
		}
		h, err := core.NewHost(core.Config{Name: name, Endpoint: ep, Scheduler: s})
		if err != nil {
			b.Fatal(err)
		}
		return h
	}
	server := mk("server")
	client := mk("client")
	server.RegisterService("ping", func(string, [][]byte) ([][]byte, error) {
		return [][]byte{{1}}, nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		client.Call("server", "ping", [][]byte{{0}}, func([][]byte, error) { done = true })
		s.RunFor(time.Second)
		if !done {
			b.Fatal("call never completed")
		}
	}
}

// BenchmarkAgentHop measures one full agent migration (snapshot, transfer,
// verify, restore, resume) through the kernel and simulator.
func BenchmarkAgentHop(b *testing.B) {
	benchAgentHop(b)
}

func benchAgentHop(b *testing.B) {
	b.Helper()
	s := netsim.NewSim(1)
	net := netsim.NewNetwork(s)
	sn := transport.NewSimNetwork(net)
	mkPlat := func(name string) *core.Host {
		net.AddNode(name, netsim.Position{}, netsim.LAN)
		ep, err := sn.Endpoint(name)
		if err != nil {
			b.Fatal(err)
		}
		h, err := core.NewHost(core.Config{
			Name: name, Endpoint: ep, Scheduler: s,
			Policy: security.Policy{AllowUnsigned: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		return h
	}
	ha := mkPlat("a")
	hb := mkPlat("b")
	platA := newBenchPlatform(ha)
	newBenchPlatform(hb)

	prog := vm.MustAssemble(`
.entry main
main:
	host a_select_dest
	jz done
	host a_migrate
	pop
done:
	halt
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platA.Spawn("hopper", prog,
			map[string][]byte{"dest": []byte("b")}, "main"); err != nil {
			b.Fatal(err)
		}
		s.RunFor(time.Second)
	}
}

// newBenchPlatform attaches an agent runtime with a fixed seed.
func newBenchPlatform(h *core.Host) *agent.Platform {
	return agent.NewPlatform(h, agent.Env{Seed: 1})
}

func BenchmarkA3UpdateCadence(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkT11FestivalScale regenerates the 2000-node festival scenario —
// the end-to-end proof that the grid-indexed simulator stays tractable at
// crowd scale. The netsim scaling micro-benchmarks (Neighbors/Broadcast/
// Route at n=100..5000, grid vs the linear-scan oracle) live in
// internal/netsim/grid_bench_test.go, where the unexported oracle is
// reachable.
func BenchmarkT11FestivalScale(b *testing.B) { benchExperiment(b, "T11") }

// BenchmarkT14AdaptiveLoop regenerates the adaptation race: five client
// groups, live sensing every 3s, per-interaction re-selection, batteries,
// escalating loss and station churn — the whole sense→decide→act loop
// end to end.
func BenchmarkT14AdaptiveLoop(b *testing.B) { benchExperiment(b, "T14") }

// BenchmarkT15Metropolis regenerates the metropolis scenario at its
// differential-test scale (1500 residents — the full 100k run is a
// multi-minute experiment, not a benchmark iteration): the sparse
// time-wheel tick, the hierarchical grid's district-local queries and the
// region-sharded move commit, end to end under all four paradigms. This is
// the regression canary for the engine that makes the full T15 tractable.
func BenchmarkT15Metropolis(b *testing.B) {
	e, ok := sim.ByID("T15")
	if !ok {
		b.Fatal("no experiment T15")
	}
	params := map[string]float64{
		"residents": 1500, "kiosks": 9, "field": 1200, "couriers": 8, "duration": 120,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.RunWith(int64(i+1), params)
		if len(res.Tables) == 0 {
			b.Fatal("T15 produced no tables")
		}
	}
}

// BenchmarkSchedulerArm measures the event-queue engines head to head on
// the beacon-shaped load the timing wheel exists for: n self-re-arming
// timers on a shared 30s cadence with staggered phases, so every RunFor
// window fires n callbacks and pushes n re-arms. The heap pays O(log n)
// per arm and per pop; the wheel pays O(1) per arm and amortised-constant
// cascades. The n=1000000 rows are the megacity scale (skipped in -short).
func BenchmarkSchedulerArm(b *testing.B) {
	const ivl = 30 * time.Second
	engines := []struct {
		name string
		mk   func(int64) *netsim.Sim
	}{
		{"heap", netsim.NewSimHeap},
		{"wheel", netsim.NewSim},
	}
	for _, eng := range engines {
		for _, n := range []int{1000, 100000, 1000000} {
			b.Run(fmt.Sprintf("%s/n%d", eng.name, n), func(b *testing.B) {
				if n >= 1000000 && testing.Short() {
					b.Skip("1M-timer benchmark in -short mode")
				}
				s := eng.mk(1)
				fired := 0
				var rearm func()
				rearm = func() {
					fired++
					s.After(ivl, rearm)
				}
				for i := 0; i < n; i++ {
					// Stagger initial phases so firings spread across the
					// interval instead of landing on one instant.
					s.After(time.Duration(i%1000)*ivl/1000, rearm)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.RunFor(ivl)
				}
				b.StopTimer()
				if fired == 0 {
					b.Fatal("no timers fired")
				}
			})
		}
	}
}

// BenchmarkBeaconCadence measures one beacon interval of discovery traffic
// over a dense grid of ad-hoc nodes, per-host timers vs one BeaconBatch:
// the batch replaces n timer re-arms per interval with one wheel callback
// and shares a single sorted scratch across every member's frame rebuild.
func BenchmarkBeaconCadence(b *testing.B) {
	const ivl = 30 * time.Second
	for _, mode := range []string{"perhost", "batch"} {
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/n%d", mode, n), func(b *testing.B) {
				s := netsim.NewSim(1)
				net := netsim.NewNetwork(s)
				sn := transport.NewSimNetwork(net)
				var batch *discovery.BeaconBatch
				if mode == "batch" {
					batch = discovery.NewBeaconBatch(s, ivl)
				}
				side := int(math.Ceil(math.Sqrt(float64(n))))
				class := netsim.AdHoc
				class.Loss = 0
				for i := 0; i < n; i++ {
					name := fmt.Sprintf("h%05d", i)
					pos := netsim.Position{X: float64(i%side) * 20, Y: float64(i/side) * 20}
					net.AddNode(name, pos, class)
					ep, err := sn.Endpoint(name)
					if err != nil {
						b.Fatal(err)
					}
					bcn := discovery.NewBeacon(ep, s, ivl)
					bcn.Advertise(discovery.Ad{Service: "svc/" + name})
					if batch != nil {
						batch.Add(bcn)
					} else {
						bcn.Start()
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.RunFor(ivl)
				}
			})
		}
	}
}

// BenchmarkDecide measures one live decision: a validated, EWMA-smoothed,
// hysteretic paradigm selection over a sensed context — the hot call the
// adaptation engine makes before every interaction.
func BenchmarkDecide(b *testing.B) {
	ctx := ctxsvc.New(func() time.Duration { return 0 }, 16)
	ctx.SetNum(ctxsvc.KeyBandwidth, 90e3)
	ctx.SetNum(ctxsvc.KeyLatency, 0.03)
	ctx.SetNum(ctxsvc.KeyLoss, 0.15)
	ctx.SetNum(ctxsvc.KeyEnergyPerByte, 1)
	ctx.SetNum(ctxsvc.KeyBattery, 0.6)
	d := &policy.AdaptiveDecider{
		Objective:    policy.Objective{BytesWeight: 0.3, LatencyWeight: 600, EnergyWeight: 0.3},
		BatteryAware: true,
	}
	task := policy.Task{
		Interactions: 6, ReqBytes: 64, ReplyBytes: 64,
		CodeBytes: 1500, StateBytes: 200, ResultBytes: 32, ComputeUnits: 0.5,
	}
	allowed := policy.Paradigms()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Decide(d, task, allowed, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
