// Command logmoblint is the multichecker driver for logmob's in-tree
// analyzers (internal/lint): determinism, pooldiscipline and lockguard. CI
// runs it on every PR; a non-baselined finding fails the build.
//
// Usage:
//
//	go run ./cmd/logmoblint ./...
//	go run ./cmd/logmoblint -json ./...
//	go run ./cmd/logmoblint -baseline lint_baseline.json ./internal/netsim
//
// Output modes:
//
//   - default: file:line:col: message (check) lines, one per finding.
//   - -json: a findings.Report document — the same schema cmd/benchgate
//     emits with its -json flag, so downstream tooling consumes both.
//
// The baseline file (-baseline, default lint_baseline.json at the working
// directory) is a findings.Report of grandfathered findings: matching
// findings (same tool, check, file and message; line numbers are ignored)
// are reported as baselined and do not affect the exit code. The repo's
// committed baseline is empty and should stay that way — fix or
// //lint:allow instead. -write-baseline regenerates the file from the
// current findings when a grandfathering window is genuinely needed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"logmob/internal/findings"
	"logmob/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON findings.Report")
	baselinePath := flag.String("baseline", "lint_baseline.json", "baseline findings file (missing file = empty baseline)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline file with the current findings and exit 0")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
		os.Exit(2)
	}

	report := Report(wd, lint.Run(lint.All(), pkgs))

	if *writeBaseline {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
			os.Exit(2)
		}
		if err := report.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
			os.Exit(2)
		}
		f.Close()
		fmt.Printf("logmoblint: wrote %d findings to %s\n", len(report.Findings), *baselinePath)
		return
	}

	baseline, err := findings.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
		os.Exit(2)
	}

	var fresh, grandfathered []findings.Finding
	for _, f := range report.Findings {
		if baseline[f.Key()] {
			grandfathered = append(grandfathered, f)
		} else {
			fresh = append(fresh, f)
		}
	}

	if *jsonOut {
		out := &findings.Report{Tool: "logmoblint", Findings: fresh}
		out.Sort()
		if err := out.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "logmoblint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range grandfathered {
			fmt.Printf("baselined: %s\n", f)
		}
		for _, f := range fresh {
			fmt.Println(f)
		}
		if len(fresh) == 0 {
			fmt.Printf("logmoblint: %d packages clean (%d baselined findings)\n", len(pkgs), len(grandfathered))
		}
	}
	if len(fresh) > 0 {
		os.Exit(1)
	}
}

// Report converts analyzer results into the shared findings schema, with
// file paths made relative to root so reports are machine-independent.
func Report(root string, results []lint.Result) *findings.Report {
	rep := &findings.Report{Tool: "logmoblint"}
	for _, r := range results {
		file := r.File
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		rep.Findings = append(rep.Findings, findings.Finding{
			Tool:    "logmoblint",
			Check:   r.Check,
			File:    filepath.ToSlash(file),
			Line:    r.Line,
			Col:     r.Col,
			Message: r.Message,
		})
	}
	rep.Sort()
	return rep
}
