package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"logmob/internal/findings"
)

// fixture is a package with known findings, used to drive the binary.
const fixture = "./internal/lint/testdata/src/lockguard/guarded"

// buildLint compiles the driver once into a temp dir and returns its path
// plus the module root the binary must run from.
func buildLint(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for !exists(filepath.Join(root, "go.mod")) {
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatal("no go.mod above working directory")
		}
		root = parent
	}
	bin = filepath.Join(t.TempDir(), "logmoblint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/logmoblint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build driver: %v\n%s", err, out)
	}
	return bin, root
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// run executes the driver from root and returns stdout and the exit code.
func run(t *testing.T, bin, root string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run driver: %v\n%s", err, stderr.String())
	}
	if stderr.Len() > 0 {
		t.Logf("driver stderr: %s", stderr.String())
	}
	return stdout.String(), code
}

// TestJSONRoundTrip proves the -json output is a findings.Report that
// survives decode/encode and carries the expected diagnostics.
func TestJSONRoundTrip(t *testing.T) {
	bin, root := buildLint(t)
	out, code := run(t, bin, root, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has known findings)", code)
	}
	rep, err := findings.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	if rep.Tool != "logmoblint" {
		t.Errorf("report tool = %q, want logmoblint", rep.Tool)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("report has no findings; the fixture should produce several")
	}
	for _, f := range rep.Findings {
		if f.Tool != "logmoblint" || f.Check != "lockguard" {
			t.Errorf("finding %s: tool/check = %s/%s, want logmoblint/lockguard", f, f.Tool, f.Check)
		}
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("finding file %q should be slash-separated and root-relative", f.File)
		}
		if f.Line <= 0 {
			t.Errorf("finding %s: missing line number", f)
		}
	}
	// Round trip: encode the decoded report and decode again.
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	rep2, err := findings.Decode(&buf)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if len(rep2.Findings) != len(rep.Findings) {
		t.Fatalf("round trip lost findings: %d != %d", len(rep2.Findings), len(rep.Findings))
	}
	for i := range rep.Findings {
		if rep.Findings[i] != rep2.Findings[i] {
			t.Errorf("finding %d changed across round trip:\n  %+v\n  %+v", i, rep.Findings[i], rep2.Findings[i])
		}
	}
}

// TestBaseline proves -write-baseline grandfathers the current findings: a
// second run against that baseline reports them as baselined and exits 0,
// and the -json stream carries only fresh findings (none).
func TestBaseline(t *testing.T) {
	bin, root := buildLint(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	out, code := run(t, bin, root, "-write-baseline", "-baseline", baseline, fixture)
	if code != 0 {
		t.Fatalf("write-baseline exit code = %d, want 0\n%s", code, out)
	}

	out, code = run(t, bin, root, "-baseline", baseline, fixture)
	if code != 0 {
		t.Fatalf("baselined run exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "baselined:") {
		t.Errorf("baselined run should list grandfathered findings:\n%s", out)
	}

	out, code = run(t, bin, root, "-json", "-baseline", baseline, fixture)
	if code != 0 {
		t.Fatalf("baselined -json run exit code = %d, want 0\n%s", code, out)
	}
	rep, err := findings.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("decode -json output: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("baselined -json run should report no fresh findings, got %d", len(rep.Findings))
	}
}

// TestCleanPackage proves a clean package exits 0 against the committed
// (empty) baseline.
func TestCleanPackage(t *testing.T) {
	bin, root := buildLint(t)
	out, code := run(t, bin, root, "./internal/findings")
	if code != 0 {
		t.Fatalf("clean package exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("clean run should say so:\n%s", out)
	}
}
