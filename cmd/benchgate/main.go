// Command benchgate guards the allocation-slashing work: it compares a fresh
// `go test -bench -json` run against the committed baseline
// (BENCH_logmob.json) and exits non-zero when a hot benchmark regressed by
// more than the tolerance on ns/op or allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench 'T3|T4' -benchtime 1x -benchmem -json . > new.json
//	go run ./cmd/benchgate -baseline BENCH_logmob.json -new new.json
//
// The default watch list is the hot set the perf campaign optimised; pass
// -benches to subset it (CI runs a short subset on pull requests and the
// full list on main). A bench missing from the new run fails the gate — a
// silently-skipped benchmark must not read as a pass — while a bench missing
// from the baseline only warns, so new benchmarks can land before the next
// baseline refresh.
//
// With -json, violations are emitted as a findings.Report — the same schema
// cmd/logmoblint emits — with check "regression" or "missing-bench" per
// finding, so one downstream consumer handles both tools.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"logmob/internal/findings"
)

// defaultBenches is the hot set: the end-to-end experiment benches the
// campaign's acceptance criteria name plus the micro-benches over the pooled
// paths. BenchmarkT15Metropolis gates the sparse-tick engine (time wheel +
// hierarchical grid) end to end at the metropolis scenario's short config.
// BenchmarkSchedulerArm/wheel/n100000 gates the timing-wheel event queue's
// arm+fire cost at six-figure timer counts, and BenchmarkBeaconCadence's
// batch row gates the shared beacon tick it feeds.
const defaultBenches = "BenchmarkT3Disaster,BenchmarkT4DisasterLatency,BenchmarkT11FestivalScale,BenchmarkT14AdaptiveLoop,BenchmarkT15Metropolis,BenchmarkDecide,BenchmarkLMUPackUnpack,BenchmarkReadFrame,BenchmarkVMEval,BenchmarkSchedulerArm/wheel/n100000,BenchmarkBeaconCadence/batch/n10000"

// Result holds one benchmark's measurements.
type Result struct {
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	HasAllocs   bool
}

// event is the subset of test2json's output we need.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// ParseTestJSON reads a `go test -json` stream and returns the benchmark
// results keyed by benchmark name (with any -GOMAXPROCS suffix stripped).
// Benchmark result lines may be split across several output events, so the
// stream's output is reassembled into plain text first.
func ParseTestJSON(r io.Reader) (map[string]Result, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchgate: bad test2json line %q: %w", line, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return parseBenchLines(text.String()), nil
}

// parseBenchLines extracts benchmark results from plain `go test -bench`
// output.
func parseBenchLines(text string) map[string]Result {
	out := make(map[string]Result)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so names match across machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasAllocs = true
			}
		}
		if res.NsPerOp > 0 {
			out[name] = res
		}
	}
	return out
}

// Regression describes one gate violation.
type Regression struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (%+.1f%%)",
		r.Bench, r.Metric, r.Old, r.New, 100*(r.New/r.Old-1))
}

// Gate compares the watched benches and returns every regression beyond tol
// (0.10 = 10%) plus the list of watched benches absent from the new run.
func Gate(baseline, fresh map[string]Result, benches []string, tol float64) (regs []Regression, missing []string, skipped []string) {
	for _, name := range benches {
		base, inBase := baseline[name]
		cur, inNew := fresh[name]
		if !inBase {
			skipped = append(skipped, name)
			continue
		}
		if !inNew {
			missing = append(missing, name)
			continue
		}
		if base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+tol) {
			regs = append(regs, Regression{Bench: name, Metric: "ns/op", Old: base.NsPerOp, New: cur.NsPerOp})
		}
		if base.HasAllocs && cur.HasAllocs && cur.AllocsPerOp > base.AllocsPerOp*(1+tol) {
			regs = append(regs, Regression{Bench: name, Metric: "allocs/op", Old: base.AllocsPerOp, New: cur.AllocsPerOp})
		}
	}
	return regs, missing, skipped
}

// Report converts gate violations into the shared findings schema.
func Report(regs []Regression, missing []string) *findings.Report {
	rep := &findings.Report{Tool: "benchgate"}
	for _, name := range missing {
		rep.Findings = append(rep.Findings, findings.Finding{
			Tool:    "benchgate",
			Check:   "missing-bench",
			Bench:   name,
			Message: "watched benchmark missing from new run",
		})
	}
	for _, r := range regs {
		rep.Findings = append(rep.Findings, findings.Finding{
			Tool:  "benchgate",
			Check: "regression",
			Bench: r.Bench,
			Message: fmt.Sprintf("%s regressed %.4g -> %.4g (%+.1f%%)",
				r.Metric, r.Old, r.New, 100*(r.New/r.Old-1)),
		})
	}
	rep.Sort()
	return rep
}

func parseFile(path string) (map[string]Result, error) {
	if path == "-" {
		return ParseTestJSON(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTestJSON(f)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_logmob.json", "committed baseline (go test -json stream)")
	newPath := flag.String("new", "-", "fresh run to gate (go test -json stream), - for stdin")
	benchList := flag.String("benches", defaultBenches, "comma-separated benchmarks to gate")
	tol := flag.Float64("tol", 0.10, "allowed fractional regression per metric")
	jsonOut := flag.Bool("json", false, "emit violations as a JSON findings.Report")
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	fresh, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: new run: %v\n", err)
		os.Exit(2)
	}

	benches := strings.Split(*benchList, ",")
	for i := range benches {
		benches[i] = strings.TrimSpace(benches[i])
	}
	regs, missing, skipped := Gate(baseline, fresh, benches, *tol)

	if *jsonOut {
		rep := Report(regs, missing)
		if err := rep.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if len(rep.Findings) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, name := range skipped {
		fmt.Printf("skip %s: not in baseline (refresh BENCH_logmob.json to gate it)\n", name)
	}
	for _, name := range benches {
		base, ok1 := baseline[name]
		cur, ok2 := fresh[name]
		if ok1 && ok2 {
			fmt.Printf("ok   %s: ns/op %.4g -> %.4g (%+.1f%%), allocs/op %.4g -> %.4g\n",
				name, base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/base.NsPerOp-1),
				base.AllocsPerOp, cur.AllocsPerOp)
		}
	}
	fail := false
	for _, name := range missing {
		fmt.Printf("FAIL %s: watched benchmark missing from new run\n", name)
		fail = true
	}
	for _, r := range regs {
		fmt.Printf("FAIL %s\n", r)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n",
		len(benches)-len(skipped)-len(missing), *tol*100)
}
