package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"logmob/internal/findings"
)

// jsonStream builds a test2json stream whose output events carry the given
// benchmark result lines, splitting each line across two events the way
// test2json does in practice.
func jsonStream(lines ...string) string {
	var sb strings.Builder
	sb.WriteString(`{"Action":"start","Package":"logmob"}` + "\n")
	for _, line := range lines {
		half := len(line) / 2
		fmt.Fprintf(&sb, `{"Action":"output","Package":"logmob","Output":%q}`+"\n", line[:half])
		fmt.Fprintf(&sb, `{"Action":"output","Package":"logmob","Output":%q}`+"\n", line[half:]+"\n")
	}
	sb.WriteString(`{"Action":"pass","Package":"logmob"}` + "\n")
	return sb.String()
}

func parse(t *testing.T, stream string) map[string]Result {
	t.Helper()
	res, err := ParseTestJSON(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseTestJSON(t *testing.T) {
	res := parse(t, jsonStream(
		"BenchmarkT3Disaster-8 \t       1\t10836547258 ns/op\t5338420376 B/op\t56159848 allocs/op",
		"BenchmarkDecide-8 \t 2840722\t       419.3 ns/op\t      48 B/op\t       3 allocs/op",
		"pkg: logmob",
	))
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2: %#v", len(res), res)
	}
	t3 := res["BenchmarkT3Disaster"]
	if t3.NsPerOp != 10836547258 || t3.AllocsPerOp != 56159848 || !t3.HasAllocs {
		t.Fatalf("T3 parsed wrong: %+v", t3)
	}
	if d := res["BenchmarkDecide"]; d.NsPerOp != 419.3 || d.AllocsPerOp != 3 {
		t.Fatalf("Decide parsed wrong: %+v", d)
	}
}

// TestGateFailsOnAllocRegression is the synthetic negative test the
// acceptance criteria require: a >10% allocs/op regression must fail the
// gate even when ns/op held steady.
func TestGateFailsOnAllocRegression(t *testing.T) {
	baseline := parse(t, jsonStream(
		"BenchmarkT3Disaster-8 \t 1\t1000000 ns/op\t500000 B/op\t10000 allocs/op",
	))
	fresh := parse(t, jsonStream(
		"BenchmarkT3Disaster-8 \t 1\t1000000 ns/op\t500000 B/op\t11500 allocs/op",
	))
	regs, missing, _ := Gate(baseline, fresh, []string{"BenchmarkT3Disaster"}, 0.10)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing benches: %v", missing)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want exactly one allocs/op regression, got %v", regs)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	baseline := parse(t, jsonStream("BenchmarkReadFrame-8 \t 100\t1000 ns/op\t0 B/op\t0 allocs/op"))
	fresh := parse(t, jsonStream("BenchmarkReadFrame-8 \t 100\t1200 ns/op\t0 B/op\t0 allocs/op"))
	regs, _, _ := Gate(baseline, fresh, []string{"BenchmarkReadFrame"}, 0.10)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("want exactly one ns/op regression, got %v", regs)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	baseline := parse(t, jsonStream(
		"BenchmarkT3Disaster-8 \t 1\t1000000 ns/op\t500000 B/op\t10000 allocs/op",
		"BenchmarkDecide-8 \t 100\t400 ns/op\t48 B/op\t3 allocs/op",
	))
	fresh := parse(t, jsonStream(
		"BenchmarkT3Disaster-8 \t 1\t1050000 ns/op\t480000 B/op\t10500 allocs/op",
		"BenchmarkDecide-8 \t 100\t390 ns/op\t48 B/op\t3 allocs/op",
	))
	regs, missing, _ := Gate(baseline, fresh,
		[]string{"BenchmarkT3Disaster", "BenchmarkDecide"}, 0.10)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("want clean gate, got regs=%v missing=%v", regs, missing)
	}
}

// TestGateMissingAndSkipped: a watched bench absent from the new run is a
// failure (missing), absent from the baseline only a skip.
func TestGateMissingAndSkipped(t *testing.T) {
	baseline := parse(t, jsonStream("BenchmarkT3Disaster-8 \t 1\t1000 ns/op\t0 B/op\t5 allocs/op"))
	fresh := parse(t, jsonStream("BenchmarkVMEval-8 \t 1\t10 ns/op\t0 B/op\t0 allocs/op"))
	regs, missing, skipped := Gate(baseline, fresh,
		[]string{"BenchmarkT3Disaster", "BenchmarkVMEval"}, 0.10)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkT3Disaster" {
		t.Fatalf("want T3 missing, got %v", missing)
	}
	if len(skipped) != 1 || skipped[0] != "BenchmarkVMEval" {
		t.Fatalf("want VMEval skipped, got %v", skipped)
	}
}

// TestGateAgainstCommittedBaseline parses the real committed baseline and
// checks the default watch list is gateable (modulo benches newer than the
// baseline, which only skip).
func TestGateAgainstCommittedBaseline(t *testing.T) {
	// The committed baseline lives at the repo root, two levels up.
	res, err := parseFile("../../BENCH_logmob.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	benches := strings.Split(defaultBenches, ",")
	regs, missing, _ := Gate(res, res, benches, 0.10)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("baseline does not gate cleanly against itself: regs=%v missing=%v", regs, missing)
	}
}

// TestReportSharedSchema proves gate violations convert into the findings
// schema logmoblint also emits, and survive an encode/decode round trip.
func TestReportSharedSchema(t *testing.T) {
	regs := []Regression{{Bench: "BenchmarkVMEval", Metric: "allocs/op", Old: 2, New: 5}}
	rep := Report(regs, []string{"BenchmarkDecide"})
	if rep.Tool != "benchgate" {
		t.Fatalf("report tool = %q, want benchgate", rep.Tool)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("want 2 findings, got %d", len(rep.Findings))
	}
	checks := map[string]string{}
	for _, f := range rep.Findings {
		if f.Tool != "benchgate" || f.Bench == "" || f.File != "" {
			t.Errorf("finding %+v: want benchgate tool, a bench and no file", f)
		}
		checks[f.Check] = f.Bench
	}
	if checks["missing-bench"] != "BenchmarkDecide" || checks["regression"] != "BenchmarkVMEval" {
		t.Fatalf("wrong check mapping: %v", checks)
	}

	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rep2, err := findings.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings) != 2 || rep2.Findings[0] != rep.Findings[0] {
		t.Fatalf("round trip changed the report: %+v", rep2)
	}
}
