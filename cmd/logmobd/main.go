// Command logmobd runs a logmob middleware node over real TCP and provides
// client subcommands to talk to one, demonstrating that the kernel is not
// simulator-bound.
//
// Usage:
//
//	logmobd serve -listen 127.0.0.1:7001 [-allow-unsigned]
//	    Run a node serving Remote Evaluation, hosting agents, offering an
//	    "echo" service and publishing a demo component "tool/add".
//
//	logmobd call -to ADDR -service echo -arg hello
//	    Invoke a Client/Server service.
//
//	logmobd eval -to ADDR -src prog.s [-entry main] [-args 1,2]
//	    Assemble a local program and ship it for Remote Evaluation.
//
//	logmobd fetch -to ADDR -name tool/add [-entry main] [-args 1,2]
//	    Fetch a published component (Code On Demand) and run it locally.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"logmob/internal/agent"
	"logmob/internal/core"
	"logmob/internal/lmu"
	"logmob/internal/security"
	"logmob/internal/transport"
	"logmob/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: logmobd serve|call|eval|fetch ...")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "call":
		err = cmdCall(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "fetch":
		err = cmdFetch(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "usage: logmobd serve|call|eval|fetch ...")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "logmobd: %v\n", err)
		os.Exit(1)
	}
}

// newTCPHost builds a kernel host on a TCP endpoint.
func newTCPHost(listen string, allowUnsigned bool) (*core.Host, error) {
	ep, err := transport.ListenTCP(listen)
	if err != nil {
		return nil, err
	}
	return core.NewHost(core.Config{
		Endpoint:  ep,
		Scheduler: transport.NewWallScheduler(),
		Policy:    security.Policy{AllowUnsigned: allowUnsigned},
		ServeEval: true,
	})
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "listen address")
	allowUnsigned := fs.Bool("allow-unsigned", true, "accept unsigned units (demo default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := newTCPHost(*listen, *allowUnsigned)
	if err != nil {
		return err
	}
	h.RegisterService("echo", func(from string, args [][]byte) ([][]byte, error) {
		fmt.Printf("echo from %s: %d frame(s)\n", from, len(args))
		return args, nil
	})
	addUnit := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "tool/add", Version: "1.0", Kind: lmu.KindComponent},
		Code:     vm.MustAssemble(".entry main\nmain:\nadd\nhalt\n").Encode(),
	}
	if err := h.Publish(addUnit); err != nil {
		return err
	}
	agent.NewPlatform(h, agent.Env{
		Seed: time.Now().UnixNano(),
		OnDone: func(r agent.Record) {
			fmt.Printf("agent %s finished: %v (stack %v)\n", r.ID, r.Status, r.Stack)
		},
	})
	h.OnMessage(func(from, topic string, data []byte) {
		fmt.Printf("message from %s [%s]: %q\n", from, topic, data)
	})

	fmt.Printf("logmobd node %s: serving eval, hosting agents, publishing tool/add\n", h.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	return h.Close()
}

// clientHost makes an ephemeral host for one client operation.
func clientHost() (*core.Host, error) {
	return newTCPHost("127.0.0.1:0", true)
}

func cmdCall(args []string) error {
	fs := flag.NewFlagSet("call", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	service := fs.String("service", "echo", "service name")
	arg := fs.String("arg", "", "single string argument")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("call: -to is required")
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Call(*to, *service, [][]byte{[]byte(*arg)}, func(results [][]byte, err error) {
		if err == nil {
			for i, r := range results {
				fmt.Printf("result[%d] = %q\n", i, r)
			}
		}
		done <- err
	})
	return wait(done)
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	src := fs.String("src", "", "assembly source file")
	entry := fs.String("entry", "main", "entry point")
	argList := fs.String("args", "", "comma-separated integer args")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" || *src == "" {
		return fmt.Errorf("eval: -to and -src are required")
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		return err
	}
	prog, err := vm.Assemble(string(text))
	if err != nil {
		return err
	}
	unit := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "cli/" + *src, Version: "1.0", Kind: lmu.KindRequest},
		Code:     prog.Encode(),
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Eval(*to, unit, *entry, parseInts(*argList), func(stack []int64, err error) {
		if err == nil {
			fmt.Printf("stack: %v\n", stack)
		}
		done <- err
	})
	return wait(done)
}

func cmdFetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	name := fs.String("name", "tool/add", "published unit name")
	entry := fs.String("entry", "main", "entry point to run after fetching")
	argList := fs.String("args", "20,22", "comma-separated integer args")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("fetch: -to is required")
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Fetch(*to, *name, "", func(u *lmu.Unit, err error) {
		if err != nil {
			done <- err
			return
		}
		fmt.Printf("fetched %s@%s (%d bytes)\n", u.Manifest.Name, u.Manifest.Version, u.Size())
		stack, err := h.RunComponent(*name, *entry, parseInts(*argList)...)
		if err == nil {
			fmt.Printf("local run stack: %v\n", stack)
		}
		done <- err
	})
	return wait(done)
}

func parseInts(list string) []int64 {
	if list == "" {
		return nil
	}
	var out []int64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logmobd: ignoring bad integer %q\n", s)
			continue
		}
		out = append(out, v)
	}
	return out
}

func wait(done chan error) error {
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("timed out")
	}
}
