// Command logmobd runs a logmob middleware node over real TCP and provides
// client subcommands to talk to one, demonstrating that the kernel is not
// simulator-bound.
//
// Usage:
//
//	logmobd serve -listen 127.0.0.1:7001 [-allow-unsigned] [-seeds A,B] [-probe 2s]
//	    Run a node serving Remote Evaluation, hosting agents, offering an
//	    "echo" service and publishing a demo component "tool/add". With
//	    -seeds, join the cluster bootstrapped through those addresses.
//
//	logmobd call -to ADDR -service echo -arg hello
//	    Invoke a Client/Server service.
//
//	logmobd eval -to ADDR -src prog.s [-entry main] [-args 1,2]
//	    Assemble a local program and ship it for Remote Evaluation.
//
//	logmobd fetch -to ADDR -name tool/add [-entry main] [-args 1,2]
//	    Fetch a published component (Code On Demand) and run it locally.
//
//	logmobd bench -seeds A[,B...] [-rounds 20] [-require-delivery]
//	    Join the cluster and replay a T1-style scenario workload against
//	    the live members, reporting the same metrics tables as simulated
//	    runs.
//
// Client subcommands accept -timeout to bound the wait (default 30s).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"logmob/internal/agent"
	"logmob/internal/cluster"
	"logmob/internal/core"
	"logmob/internal/lmu"
	"logmob/internal/scenario"
	"logmob/internal/security"
	"logmob/internal/transport"
	"logmob/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: logmobd serve|call|eval|fetch|bench ...")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "call":
		err = cmdCall(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "fetch":
		err = cmdFetch(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "usage: logmobd serve|call|eval|fetch|bench ...")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "logmobd: %v\n", err)
		os.Exit(1)
	}
}

// newTCPHost builds a kernel host on a TCP endpoint.
func newTCPHost(listen string, allowUnsigned, servePublish bool) (*core.Host, error) {
	ep, err := transport.ListenTCP(listen)
	if err != nil {
		return nil, err
	}
	return core.NewHost(core.Config{
		Endpoint:     ep,
		Scheduler:    transport.NewWallScheduler(),
		Policy:       security.Policy{AllowUnsigned: allowUnsigned},
		ServeEval:    true,
		ServePublish: servePublish,
	})
}

// joinCluster attaches a membership node to the host's cluster channel.
func joinCluster(h *core.Host, seeds []string, probe time.Duration) *cluster.Node {
	return cluster.Join(h.Mux().Channel(transport.ChanCluster), h.Scheduler(), cluster.Config{
		Seeds:      seeds,
		ProbeEvery: probe,
		OnJoin:     func(addr string) { fmt.Printf("cluster: %s joined\n", addr) },
		OnLeave:    func(addr string) { fmt.Printf("cluster: %s evicted\n", addr) },
	})
}

// splitSeeds parses a comma-separated seed list.
func splitSeeds(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "listen address")
	allowUnsigned := fs.Bool("allow-unsigned", true, "accept unsigned units (demo default)")
	seeds := fs.String("seeds", "", "comma-separated cluster seed addresses")
	probe := fs.Duration("probe", 2*time.Second, "cluster liveness probe interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := newTCPHost(*listen, *allowUnsigned, true)
	if err != nil {
		return err
	}
	h.RegisterService("echo", func(from string, args [][]byte) ([][]byte, error) {
		fmt.Printf("echo from %s: %d frame(s)\n", from, len(args))
		return args, nil
	})
	h.RegisterService(scenario.SinkServiceName, scenario.SinkService())
	addUnit := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "tool/add", Version: "1.0", Kind: lmu.KindComponent},
		Code:     vm.MustAssemble(".entry main\nmain:\nadd\nhalt\n").Encode(),
	}
	if err := h.Publish(addUnit); err != nil {
		return err
	}
	agent.NewPlatform(h, agent.Env{
		Seed: time.Now().UnixNano(),
		OnDone: func(r agent.Record) {
			fmt.Printf("agent %s finished: %v (stack %v)\n", r.ID, r.Status, r.Stack)
		},
	})
	h.OnMessage(func(from, topic string, data []byte) {
		fmt.Printf("message from %s [%s]: %q\n", from, topic, data)
	})

	// Always a cluster member, even with no seeds: a seed node has nobody
	// to bootstrap from but must still answer joiners' hellos.
	member := joinCluster(h, splitSeeds(*seeds), *probe)

	fmt.Printf("logmobd node %s: serving eval, hosting agents, publishing tool/add\n", h.Addr())
	sig := make(chan os.Signal, 1)
	// SIGTERM too: process managers and CI send it, and a daemon that only
	// honours ^C never runs its shutdown path under them.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	member.Close()
	return h.Close()
}

// clientHost makes an ephemeral host for one client operation.
func clientHost() (*core.Host, error) {
	return newTCPHost("127.0.0.1:0", true, false)
}

func cmdCall(args []string) error {
	fs := flag.NewFlagSet("call", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	service := fs.String("service", "echo", "service name")
	arg := fs.String("arg", "", "single string argument")
	timeout := fs.Duration("timeout", 30*time.Second, "reply wait timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("call: -to is required")
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Call(*to, *service, [][]byte{[]byte(*arg)}, func(results [][]byte, err error) {
		if err == nil {
			for i, r := range results {
				fmt.Printf("result[%d] = %q\n", i, r)
			}
		}
		done <- err
	})
	return wait(done, *timeout)
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	src := fs.String("src", "", "assembly source file")
	entry := fs.String("entry", "main", "entry point")
	argList := fs.String("args", "", "comma-separated integer args")
	timeout := fs.Duration("timeout", 30*time.Second, "reply wait timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" || *src == "" {
		return fmt.Errorf("eval: -to and -src are required")
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		return err
	}
	prog, err := vm.Assemble(string(text))
	if err != nil {
		return err
	}
	unit := &lmu.Unit{
		Manifest: lmu.Manifest{Name: "cli/" + *src, Version: "1.0", Kind: lmu.KindRequest},
		Code:     prog.Encode(),
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Eval(*to, unit, *entry, parseInts(*argList), func(stack []int64, err error) {
		if err == nil {
			fmt.Printf("stack: %v\n", stack)
		}
		done <- err
	})
	return wait(done, *timeout)
}

func cmdFetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	to := fs.String("to", "", "server address")
	name := fs.String("name", "tool/add", "published unit name")
	entry := fs.String("entry", "main", "entry point to run after fetching")
	argList := fs.String("args", "20,22", "comma-separated integer args")
	timeout := fs.Duration("timeout", 30*time.Second, "reply wait timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("fetch: -to is required")
	}
	h, err := clientHost()
	if err != nil {
		return err
	}
	defer h.Close()
	done := make(chan error, 1)
	h.Fetch(*to, *name, "", func(u *lmu.Unit, err error) {
		if err != nil {
			done <- err
			return
		}
		fmt.Printf("fetched %s@%s (%d bytes)\n", u.Manifest.Name, u.Manifest.Version, u.Size())
		stack, err := h.RunComponent(*name, *entry, parseInts(*argList)...)
		if err == nil {
			fmt.Printf("local run stack: %v\n", stack)
		}
		done <- err
	})
	return wait(done, *timeout)
}

func parseInts(list string) []int64 {
	if list == "" {
		return nil
	}
	var out []int64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logmobd: ignoring bad integer %q\n", s)
			continue
		}
		out = append(out, v)
	}
	return out
}

func wait(done chan error, timeout time.Duration) error {
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("timed out after %v", timeout)
	}
}
