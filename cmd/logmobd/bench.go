package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"logmob/internal/agent"
	"logmob/internal/app"
	"logmob/internal/lmu"
	"logmob/internal/scenario"
	"logmob/internal/vm"
)

// T1 byte shapes (internal/sim T1): the bench replays the paper's traffic
// model against live daemons with the same request/reply/state/code sizes
// the simulated experiment uses.
const (
	benchReqBytes   = 200
	benchReplyBytes = 1000
	benchStateBytes = 600
	benchCodeBytes  = 3000
)

// benchAgentSource is the out-and-back itinerary agent from the T1
// experiment, rebuilt here so the bench does not depend on the simulator.
const benchAgentSource = `
.entry main
main:
	push 0
	host a_itin_select
	jz done
	host a_migrate
	pop
	host a_select_dest
	jz done
	host a_migrate
	pop
done:
	halt
`

var benchAgentProgram = vm.MustAssemble(benchAgentSource)

// cmdBench joins the cluster through -seeds, waits for members, replays a
// T1-style workload set over the live wire and renders the outcome table.
// With -require-delivery it exits nonzero unless every workload delivered,
// which is what the CI cluster smoke job asserts.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	seeds := fs.String("seeds", "", "comma-separated cluster seed addresses")
	rounds := fs.Int64("rounds", 20, "client/server request/reply rounds")
	timeout := fs.Duration("timeout", 30*time.Second, "per-operation timeout and join deadline")
	probe := fs.Duration("probe", 500*time.Millisecond, "cluster liveness probe interval")
	require := fs.Bool("require-delivery", false, "exit nonzero unless every workload delivered")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seedList := splitSeeds(*seeds)
	if len(seedList) == 0 {
		return fmt.Errorf("bench: -seeds is required")
	}

	h, err := newTCPHost("127.0.0.1:0", true, false)
	if err != nil {
		return err
	}
	defer h.Close()
	live := scenario.NewLive(h, nil)
	live.Timeout = *timeout
	platform := agent.NewPlatform(h, agent.Env{OnDone: live.OnAgentDone})
	live.Platform = platform

	member := joinCluster(h, seedList, *probe)
	defer member.Close()
	deadline := time.Now().Add(*timeout)
	for len(member.Peers()) == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: no cluster members discovered via %v within %v", seedList, *timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
	live.Members = member.Peers()
	fmt.Printf("bench: driving %d member(s): %v\n", len(live.Members), live.Members)

	codec := func(w *scenario.World) *lmu.Unit {
		return app.BuildCodec(w.ID, "bench", "1.0", benchCodeBytes)
	}
	res := live.Replay("live T1 workload", []scenario.Workload{
		scenario.Calls{Service: "t1-req", ReqBytes: benchReqBytes,
			ReplyBytes: benchReplyBytes, Rounds: *rounds},
		scenario.EvalOnce{Unit: codec, Entry: "decode", Args: []int64{8}},
		scenario.FetchRun{Unit: codec, Entry: "decode", Runs: 4, Args: []int64{8}},
		scenario.SpawnAgent{Name: "roundtrip", Program: benchAgentProgram,
			Data: map[string][]byte{
				agent.KeyDest:      []byte(h.Name()),
				agent.KeyItinerary: agent.EncodeItinerary(live.Members[:1]),
				"state":            make([]byte, benchStateBytes),
			},
			Entry: "main"},
	})
	res.Table.Render(os.Stdout)
	fmt.Printf("bench: %d operation(s) delivered\n", res.Delivered)

	for _, row := range res.Rows {
		if row.Err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s (%s): %v\n", row.Workload, row.Paradigm, row.Err)
		}
	}
	if *require {
		for _, row := range res.Rows {
			if row.Delivered == 0 {
				return fmt.Errorf("bench: %s (%s) delivered nothing", row.Workload, row.Paradigm)
			}
		}
		if res.Delivered == 0 {
			return fmt.Errorf("bench: nothing delivered")
		}
	}
	return nil
}
