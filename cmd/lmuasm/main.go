// Command lmuasm assembles, disassembles and runs logmob VM programs.
//
// Usage:
//
//	lmuasm asm [-o prog.bin] prog.s        assemble to bytecode
//	lmuasm dis prog.bin                    disassemble to stdout
//	lmuasm run [-entry main] [-args 1,2,3] [-fuel N] prog.s|prog.bin
//
// run links a small standard capability set: now_ms, log and rand.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"logmob/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmuasm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lmuasm asm [-o prog.bin] prog.s
  lmuasm dis prog.bin
  lmuasm run [-entry main] [-args 1,2,3] [-fuel N] prog.s|prog.bin`)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "", "output file (default: input with .bin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("asm: need exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := vm.Assemble(string(src))
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(fs.Arg(0), ".s") + ".bin"
	}
	if err := os.WriteFile(dst, prog.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d entries, %d imports -> %s\n",
		fs.Arg(0), len(prog.Code), len(prog.Entries), len(prog.Imports), dst)
	return nil
}

func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("dis: need exactly one bytecode file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := vm.DecodeProgram(data)
	if err != nil {
		return err
	}
	fmt.Print(vm.Disassemble(prog))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	entry := fs.String("entry", "main", "entry point")
	argList := fs.String("args", "", "comma-separated integer arguments")
	fuel := fs.Int64("fuel", 10_000_000, "instruction budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one program file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var prog *vm.Program
	if strings.HasSuffix(fs.Arg(0), ".s") {
		prog, err = vm.Assemble(string(data))
	} else {
		prog, err = vm.DecodeProgram(data)
	}
	if err != nil {
		return err
	}

	host := vm.NewHostTable()
	start := time.Now()
	host.Register(vm.HostFunc{Name: "now_ms", Arity: 0,
		Fn: func(*vm.Machine, []int64) ([]int64, int64, error) {
			return []int64{time.Since(start).Milliseconds()}, 0, nil
		}})
	host.Register(vm.HostFunc{Name: "log", Arity: 1,
		Fn: func(_ *vm.Machine, a []int64) ([]int64, int64, error) {
			fmt.Printf("log: %d\n", a[0])
			return nil, 0, nil
		}})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	host.Register(vm.HostFunc{Name: "rand", Arity: 1,
		Fn: func(_ *vm.Machine, a []int64) ([]int64, int64, error) {
			if a[0] <= 0 {
				return []int64{0}, 0, nil
			}
			return []int64{rng.Int63n(a[0])}, 0, nil
		}})

	m, err := vm.New(prog, host, *fuel)
	if err != nil {
		return err
	}
	var entryArgs []int64
	if *argList != "" {
		for _, s := range strings.Split(*argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("run: bad argument %q", s)
			}
			entryArgs = append(entryArgs, v)
		}
	}
	if err := m.SetEntry(*entry, entryArgs...); err != nil {
		return err
	}
	wall := time.Now()
	runErr := m.Run()
	elapsed := time.Since(wall)
	if runErr != nil {
		return runErr
	}
	fmt.Printf("status: %s\nsteps: %d (%.1f M/s)\nstack: %v\n",
		m.Status(), m.Steps, float64(m.Steps)/elapsed.Seconds()/1e6, m.Stack())
	return nil
}
