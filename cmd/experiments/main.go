// Command experiments regenerates every table and figure in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                    run everything
//	experiments -run T3,T4         run selected experiments (IDs are
//	                               case-insensitive: -run t11 works)
//	experiments -seed 7            change the deterministic seed
//	experiments -seeds 5           replicate each experiment over 5 seeds
//	                               (seed..seed+4) and aggregate mean±stddev
//	experiments -parallel 4        run replicates 4 at a time (one Sim per
//	                               seed; per-seed output is identical to a
//	                               serial run)
//	experiments -workers 8         size each world's tick worker pool: the
//	                               simulator shards mobility and neighbor
//	                               recomputation across 8 workers (0 =
//	                               GOMAXPROCS, 1 = serial engine; per-seed
//	                               output is identical at any setting)
//	experiments -sweep a=1,2,3     sweep parameter a over the given values
//	                               (see -list for each experiment's
//	                               parameters)
//	experiments -paradigm rev      pin the paradigm of experiments that
//	                               expose one (cs/rev/cod/ma/adaptive),
//	                               like -loss/-churn override theirs
//	experiments -json              machine-readable output
//	experiments -list              list experiments and their motivations
//	experiments -csv out/          also write each table as CSV under out/
//	experiments -cpuprofile p.out  write a CPU profile of the whole run
//	experiments -memprofile m.out  write an allocation profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"logmob/internal/metrics"
	"logmob/internal/scenario"
	"logmob/internal/sim"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 1, "deterministic base seed")
	seeds := flag.Int("seeds", 1, "number of replicate seeds (seed..seed+N-1)")
	parallel := flag.Int("parallel", 1, "replicates to run concurrently")
	workers := flag.Int("workers", 0, "tick worker pool per world (0 = GOMAXPROCS split across -parallel, 1 = serial engine)")
	sweepFlag := flag.String("sweep", "", "parameter sweep, e.g. attendees=100,500,2000")
	lossFlag := flag.Float64("loss", -1, "override the 'loss' parameter of experiments that expose it (e.g. T13 drop probability)")
	churnFlag := flag.Float64("churn", -1, "override the 'churn' parameter of experiments that expose it (e.g. T13 per-tick crash probability)")
	paradigmFlag := flag.String("paradigm", "", "override the 'paradigm' parameter of experiments that expose it: cs, rev, cod, ma or adaptive (e.g. T14 group selection)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write tables as CSV into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("-cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("-memprofile: %v", err)
			}
			runtime.GC() // flush garbage so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("-memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("-memprofile: %v", err)
			}
		}()
	}

	if *seeds < 1 {
		fatalf("-seeds must be >= 1")
	}
	if *parallel < 1 {
		fatalf("-parallel must be >= 1")
	}
	// Safe to default to the parallel engine: per-seed tables are
	// bit-identical at any worker count (the differential tests enforce
	// it). When replicates already run -parallel at a time, split the
	// cores between worlds instead of oversubscribing parallel x workers.
	effWorkers := *workers
	if effWorkers == 0 && *parallel > 1 {
		effWorkers = max(1, runtime.GOMAXPROCS(0) / *parallel)
	}
	scenario.SetDefaultWorkers(effWorkers)

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n     motivation: %s\n", e.ID, e.Title, e.Motivation)
			if len(e.Params) > 0 {
				names := make([]string, 0, len(e.Params))
				for name := range e.Params {
					names = append(names, name)
				}
				sort.Strings(names)
				parts := make([]string, len(names))
				for i, name := range names {
					parts[i] = fmt.Sprintf("%s=%g", name, e.Params[name])
				}
				fmt.Printf("     parameters: %s\n", strings.Join(parts, " "))
			}
		}
		return
	}

	var selected []sim.Experiment
	if *runFlag == "" {
		selected = sim.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := sim.ByID(id)
			if !ok {
				fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	sweepParam, sweepValues := parseSweep(*sweepFlag)
	if sweepParam != "" {
		for _, e := range selected {
			if e.RunWith == nil {
				fatalf("%s has no sweepable parameters", e.ID)
			}
			if _, ok := e.Params[sweepParam]; !ok {
				fatalf("%s has no parameter %q (use -list)", e.ID, sweepParam)
			}
		}
	}

	// Adversity and paradigm knobs: -loss/-churn/-paradigm override the
	// matching parameter on every selected experiment that exposes it
	// (others run unchanged).
	overrides := map[string]float64{}
	if *lossFlag >= 0 {
		overrides["loss"] = *lossFlag
	}
	if *churnFlag >= 0 {
		overrides["churn"] = *churnFlag
	}
	if *paradigmFlag != "" {
		code, ok := sim.ParadigmCodes[strings.ToLower(*paradigmFlag)]
		if !ok {
			fatalf("unknown -paradigm %q (want cs, rev, cod, ma or adaptive)", *paradigmFlag)
		}
		overrides["paradigm"] = code
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	runner := scenario.Runner{Seeds: scenario.Seeds(*seed, *seeds), Parallel: *parallel}
	var report []*jsonExperiment
	for _, e := range selected {
		points := []float64{0}
		if sweepParam != "" {
			points = sweepValues
		}
		// Restrict the adversity overrides to parameters this experiment
		// actually exposes.
		eOverrides := map[string]float64{}
		for name, v := range overrides {
			if _, ok := e.Params[name]; ok {
				eOverrides[name] = v
			}
		}
		for _, v := range points {
			fn := e.Run
			label := ""
			if sweepParam != "" || len(eOverrides) > 0 {
				v := v
				e := e
				fn = func(s int64) *sim.Result {
					params := map[string]float64{}
					for name, ov := range eOverrides {
						params[name] = ov
					}
					if sweepParam != "" {
						params[sweepParam] = v
					}
					return e.RunWith(s, params)
				}
			}
			if sweepParam != "" {
				label = fmt.Sprintf("%s=%g", sweepParam, v)
			}
			if !*jsonOut {
				if label != "" {
					fmt.Printf("running %s (%s) [%s] ...\n", e.ID, e.Title, label)
				} else {
					fmt.Printf("running %s (%s) ...\n", e.ID, e.Title)
				}
			}
			multi := runner.Run(fn)
			if *jsonOut {
				report = append(report, jsonify(e, label, multi))
			} else {
				render(multi, os.Stdout)
			}
			writeCSV(*csvDir, e.ID, label, multi)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

// parseSweep parses "param=v1,v2,v3" into its parts.
func parseSweep(s string) (string, []float64) {
	if s == "" {
		return "", nil
	}
	name, list, ok := strings.Cut(s, "=")
	if !ok || name == "" || list == "" {
		fatalf("bad -sweep %q, want param=v1,v2,...", s)
	}
	var values []float64
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatalf("bad -sweep value %q: %v", part, err)
		}
		values = append(values, v)
	}
	return strings.TrimSpace(name), values
}

// render writes a replicated run: each seed's full result, then (for
// multi-seed runs) the aggregate tables.
func render(m *scenario.MultiResult, w *os.File) {
	for _, rep := range m.Replicates {
		if len(m.Replicates) > 1 {
			fmt.Fprintf(w, "--- seed %d ---\n", rep.Seed)
		}
		rep.Result.Render(w)
	}
	if m.Aggregate != nil {
		fmt.Fprintf(w, "--- aggregate over %d seeds ---\n", len(m.Replicates))
		m.Aggregate.Render(w)
	}
}

// writeCSV writes each table (the aggregate's for multi-seed runs) as CSV.
func writeCSV(dir, id, label string, m *scenario.MultiResult) {
	if dir == "" || len(m.Replicates) == 0 {
		return
	}
	res := m.Replicates[0].Result
	if m.Aggregate != nil {
		res = m.Aggregate
	}
	suffix := ""
	if label != "" {
		suffix = "_" + strings.ReplaceAll(strings.ReplaceAll(label, "=", "_"), ",", "_")
	}
	for i, t := range res.Tables {
		name := fmt.Sprintf("%s%s_table%d.csv", strings.ToLower(id), suffix, i+1)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fatalf("%v", err)
		}
		t.RenderCSV(f)
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
}

// JSON report shapes.
type jsonExperiment struct {
	ID         string          `json:"id"`
	Title      string          `json:"title"`
	Sweep      string          `json:"sweep,omitempty"`
	Seeds      []int64         `json:"seeds"`
	Replicates []*jsonResult   `json:"replicates"`
	Aggregate  *jsonResultBody `json:"aggregate,omitempty"`
}

type jsonResult struct {
	Seed int64 `json:"seed"`
	jsonResultBody
}

type jsonResultBody struct {
	Tables []*jsonTable `json:"tables"`
	Notes  []string     `json:"notes,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func jsonifyTables(tables []*metrics.Table) []*jsonTable {
	out := make([]*jsonTable, len(tables))
	for i, t := range tables {
		jt := &jsonTable{Title: t.Title, Headers: t.Headers()}
		for r := 0; r < t.Rows(); r++ {
			jt.Rows = append(jt.Rows, t.Row(r))
		}
		out[i] = jt
	}
	return out
}

func jsonify(e sim.Experiment, label string, m *scenario.MultiResult) *jsonExperiment {
	je := &jsonExperiment{ID: e.ID, Title: e.Title, Sweep: label}
	for _, rep := range m.Replicates {
		je.Seeds = append(je.Seeds, rep.Seed)
		je.Replicates = append(je.Replicates, &jsonResult{
			Seed: rep.Seed,
			jsonResultBody: jsonResultBody{
				Tables: jsonifyTables(rep.Result.Tables),
				Notes:  rep.Result.Notes,
			},
		})
	}
	if m.Aggregate != nil {
		je.Aggregate = &jsonResultBody{
			Tables: jsonifyTables(m.Aggregate.Tables),
			Notes:  m.Aggregate.Notes,
		}
	}
	return je
}
