// Command experiments regenerates every table and figure in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 run everything
//	experiments -run T3,T4      run selected experiments
//	experiments -seed 7         change the deterministic seed
//	experiments -list           list experiments and their motivations
//	experiments -csv out/       also write each table as CSV under out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"logmob/internal/sim"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write tables as CSV into this directory")
	flag.Parse()

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n     motivation: %s\n", e.ID, e.Title, e.Motivation)
		}
		return
	}

	var selected []sim.Experiment
	if *runFlag == "" {
		selected = sim.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := sim.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		fmt.Printf("running %s (%s) ...\n", e.ID, e.Title)
		res := e.Run(*seed)
		res.Render(os.Stdout)
		if *csvDir != "" {
			for i, t := range res.Tables {
				name := fmt.Sprintf("%s_table%d.csv", strings.ToLower(e.ID), i+1)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
				t.RenderCSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
