package logmob_test

import (
	"testing"
	"time"

	"logmob"
)

// TestFacadeEndToEnd drives the public facade the way a downstream user
// would: build a simulated world, wire two hosts, exercise all four
// paradigms.
func TestFacadeEndToEnd(t *testing.T) {
	sim := logmob.NewSim(1)
	net := logmob.NewNetwork(sim)
	sn := logmob.NewSimNetwork(net)

	publisher, err := logmob.NewIdentity("publisher")
	if err != nil {
		t.Fatal(err)
	}
	trust := logmob.NewTrustStore()
	trust.TrustIdentity(publisher)

	mkHost := func(name string, class logmob.LinkClass) *logmob.Host {
		class.Loss = 0
		net.AddNode(name, logmob.Position{}, class)
		ep, err := sn.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := logmob.NewHost(logmob.HostConfig{
			Name: name, Endpoint: ep, Scheduler: sim, Trust: trust, ServeEval: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	server := mkHost("server", logmob.LAN)
	device := mkHost("device", logmob.GPRS)

	// CS.
	server.RegisterService("echo", func(from string, args [][]byte) ([][]byte, error) {
		return args, nil
	})
	var echoed string
	device.Call("server", "echo", [][]byte{[]byte("hi")}, func(r [][]byte, err error) {
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		echoed = string(r[0])
	})

	// COD: publish a unit, fetch it, run it.
	prog := logmob.MustAssemble(".entry main\nmain:\nadd\nhalt\n")
	unit := &logmob.Unit{
		Manifest: logmob.Manifest{Name: "tool/add", Version: "1.0", Kind: logmob.KindComponent, Publisher: "publisher"},
		Code:     prog.Encode(),
	}
	publisher.Sign(unit)
	if err := server.Publish(unit); err != nil {
		t.Fatal(err)
	}
	var codResult int64
	device.Fetch("server", "tool/add", "", func(u *logmob.Unit, err error) {
		if err != nil {
			t.Errorf("Fetch: %v", err)
			return
		}
		stack, err := device.RunComponent("tool/add", "main", 40, 2)
		if err != nil {
			t.Errorf("RunComponent: %v", err)
			return
		}
		codResult = stack[0]
	})

	// REV.
	var revResult int64
	device.Eval("server", unit, "main", []int64{20, 1}, func(stack []int64, err error) {
		if err != nil {
			t.Errorf("Eval: %v", err)
			return
		}
		revResult = stack[0]
	})

	// MA: a courier from device to server.
	logmob.NewAgentPlatform(device, logmob.AgentEnv{Seed: 1})
	serverPlat := logmob.NewAgentPlatform(server, logmob.AgentEnv{Seed: 2})
	_ = serverPlat
	var delivered []byte
	server.OnMessage(func(from, topic string, data []byte) { delivered = data })

	courier := &logmob.Unit{
		Manifest: logmob.Manifest{Name: "courier", Version: "1.0", Kind: logmob.KindAgent, Publisher: "publisher"},
	}
	_ = courier // the agent package's courier program is exercised below via facade re-exports

	sim.RunFor(time.Minute)

	if echoed != "hi" {
		t.Errorf("CS echo = %q", echoed)
	}
	if codResult != 42 {
		t.Errorf("COD result = %d", codResult)
	}
	if revResult != 21 {
		t.Errorf("REV result = %d", revResult)
	}
	_ = delivered

	// Paradigm model sanity through the facade.
	task := logmob.ParadigmTask{Interactions: 50, ReqBytes: 100, ReplyBytes: 500, CodeBytes: 2000}
	if logmob.CS.String() != "CS" || logmob.MA.String() != "MA" {
		t.Error("paradigm names broken")
	}
	_ = task
}

func TestFacadeAssembler(t *testing.T) {
	prog, err := logmob.Assemble(".entry main\nmain:\npush 7\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	text := logmob.Disassemble(prog)
	prog2, err := logmob.Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if string(prog.Encode()) != string(prog2.Encode()) {
		t.Error("facade asm round trip changed program")
	}
}

func TestFacadeUnitRoundTrip(t *testing.T) {
	u := &logmob.Unit{Manifest: logmob.Manifest{Name: "x", Kind: logmob.KindData}}
	got, err := logmob.UnpackUnit(u.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Name != "x" {
		t.Errorf("round trip = %+v", got.Manifest)
	}
}

func TestFacadeRegistry(t *testing.T) {
	r := logmob.NewRegistry(0)
	u := &logmob.Unit{Manifest: logmob.Manifest{Name: "c", Version: "1.0", Kind: logmob.KindComponent}}
	if err := r.Put(u); err != nil {
		t.Fatal(err)
	}
	if !r.Has("c") {
		t.Error("registry lost the unit")
	}
}
