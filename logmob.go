// Package logmob is a mobile computing middleware built around logical
// mobility, reproducing "Exploiting Logical Mobility in Mobile Computing
// Middleware" (Zachariadis, Mascolo, Emmerich; ICDCS 2002 Workshops).
//
// The middleware gives every device a Host: a protected runtime offering the
// four mobile-code paradigms of Fuggetta, Picco and Vigna —
//
//   - Client/Server: Host.RegisterService / Host.Call
//   - Remote Evaluation: Host.Eval
//   - Code On Demand: Host.Publish / Host.Fetch / Host.RunComponent
//   - Mobile Agents: agent.Platform over Host.SendAgent
//
// Mobile code is bytecode for the built-in VM (Go cannot load code at run
// time, so code really is data here: assembled, signed, shipped, verified,
// executed, snapshotted mid-run and resumed elsewhere). Units of movement
// are Logical Mobility Units: code + data + execution state + manifest +
// signature.
//
// The same kernel runs over two transports: a deterministic discrete-event
// wireless simulator (ad-hoc, WLAN, GPRS and LAN link classes with radio
// range, mobility, loss, per-byte cost and energy) and real TCP. Context
// awareness, service discovery (Jini-style centralised lookup and
// decentralised beaconing), a quota-bounded component registry with
// eviction, ed25519 code signing, and a paradigm-selection policy engine
// complete the system.
//
// This package is the facade: it re-exports the public surface a downstream
// user needs. The implementation lives in internal/ packages; the runnable
// entry points are in examples/ and cmd/.
package logmob

import (
	"time"

	"logmob/internal/adapt"
	"logmob/internal/agent"
	"logmob/internal/cluster"
	"logmob/internal/core"
	"logmob/internal/ctxsvc"
	"logmob/internal/discovery"
	"logmob/internal/lmu"
	"logmob/internal/metrics"
	"logmob/internal/netsim"
	"logmob/internal/policy"
	"logmob/internal/registry"
	"logmob/internal/scenario"
	"logmob/internal/security"
	"logmob/internal/transport"
	"logmob/internal/update"
	"logmob/internal/vm"
)

// Kernel types.
type (
	// Host is a device's middleware kernel.
	Host = core.Host
	// HostConfig assembles a Host.
	HostConfig = core.Config
	// ServiceFunc implements a Client/Server service.
	ServiceFunc = core.ServiceFunc
)

// NewHost builds a middleware kernel from cfg.
func NewHost(cfg HostConfig) (*Host, error) { return core.NewHost(cfg) }

// Logical Mobility Units.
type (
	// Unit is a Logical Mobility Unit: code + data + state + manifest.
	Unit = lmu.Unit
	// Manifest identifies and describes a Unit.
	Manifest = lmu.Manifest
	// UnitKind classifies a Unit.
	UnitKind = lmu.Kind
)

// Unit kinds.
const (
	KindComponent = lmu.KindComponent
	KindAgent     = lmu.KindAgent
	KindRequest   = lmu.KindRequest
	KindData      = lmu.KindData
)

// UnpackUnit parses a packed unit.
func UnpackUnit(data []byte) (*Unit, error) { return lmu.Unpack(data) }

// Virtual machine.
type (
	// Program is mobile bytecode.
	Program = vm.Program
	// Machine executes a Program.
	Machine = vm.Machine
	// HostTable is the capability set granted to a Program.
	HostTable = vm.HostTable
)

// Assemble translates VM assembly into a Program.
func Assemble(src string) (*Program, error) { return vm.Assemble(src) }

// MustAssemble is Assemble panicking on error.
func MustAssemble(src string) *Program { return vm.MustAssemble(src) }

// Disassemble renders a Program as assembly.
func Disassemble(p *Program) string { return vm.Disassemble(p) }

// Security.
type (
	// Identity is a named signing keypair.
	Identity = security.Identity
	// TrustStore maps signer names to trusted keys.
	TrustStore = security.TrustStore
	// SecurityPolicy governs acceptance of foreign units.
	SecurityPolicy = security.Policy
)

// NewIdentity generates a fresh keypair.
func NewIdentity(name string) (*Identity, error) { return security.NewIdentity(name) }

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore { return security.NewTrustStore() }

// VerifyUnit checks a unit's signature under a policy.
func VerifyUnit(u *Unit, trust *TrustStore, pol SecurityPolicy) error {
	return security.Verify(u, trust, pol)
}

// Registry.
type (
	// Registry is the quota-bounded local component store.
	Registry = registry.Registry
	// EvictionPolicy chooses eviction victims.
	EvictionPolicy = registry.EvictionPolicy
)

// NewRegistry returns a registry with the given quota (0 = unlimited).
func NewRegistry(quota int64, opts ...registry.Option) *Registry {
	return registry.New(quota, opts...)
}

// Agents.
type (
	// AgentPlatform hosts mobile agents on a Host.
	AgentPlatform = agent.Platform
	// AgentEnv configures the protected agent environment.
	AgentEnv = agent.Env
	// AgentRecord describes a finished agent.
	AgentRecord = agent.Record
)

// NewAgentPlatform attaches an agent runtime to a Host.
func NewAgentPlatform(h *Host, env AgentEnv) *AgentPlatform { return agent.NewPlatform(h, env) }

// CourierProgram is the stock store-carry-forward courier agent: it hops
// toward its destination (the destination if adjacent, else a random
// neighbor, carrying when isolated) and delivers its payload under its
// topic.
var CourierProgram = agent.CourierProgram

// NewCourierData builds the data space for a courier carrying payload to
// dest, delivered under topic.
func NewCourierData(dest, topic string, payload []byte) map[string][]byte {
	return agent.NewCourierData(dest, topic, payload)
}

// Discovery.
type (
	// ServiceAd advertises a service.
	ServiceAd = discovery.Ad
	// ServiceQuery matches advertisements.
	ServiceQuery = discovery.Query
	// LookupServer is a Jini-style centralised index.
	LookupServer = discovery.LookupServer
	// LookupClient talks to a LookupServer.
	LookupClient = discovery.LookupClient
	// Beacon is decentralised ad-hoc discovery.
	Beacon = discovery.Beacon
	// BeaconBatch coalesces beacons sharing an interval onto one scheduler
	// timer, broadcasting in canonical node order.
	BeaconBatch = discovery.BeaconBatch
)

// Context awareness.
type (
	// Context is a host's context service.
	Context = ctxsvc.Service
	// ContextKey names a context attribute.
	ContextKey = ctxsvc.Key
	// ContextValue is an attribute value.
	ContextValue = ctxsvc.Value
)

// Paradigm selection.
type (
	// Paradigm is one of CS, REV, COD, MA.
	Paradigm = policy.Paradigm
	// ParadigmTask describes an interaction for the cost model.
	ParadigmTask = policy.Task
	// ParadigmDecider chooses a paradigm from context.
	ParadigmDecider = policy.Decider
)

// The four paradigms.
const (
	CS  = policy.CS
	REV = policy.REV
	COD = policy.COD
	MA  = policy.MA
)

// Self-update.
type (
	// Updater keeps a host's components current via COD.
	Updater = update.Updater
)

// NewUpdater builds a self-updater checking every interval.
func NewUpdater(h *Host, finder discovery.Finder, sched transport.Scheduler, interval time.Duration) *Updater {
	return update.New(h, finder, sched, interval)
}

// AdvertiseComponents announces a host's published components for updaters
// to discover.
func AdvertiseComponents(h *Host, adv update.Advertiser, ttl time.Duration) int {
	return update.AdvertiseComponents(h, adv, ttl)
}

// Adaptive execution: the sense→decide→act loop.
type (
	// TaskRunner executes tasks under the paradigm a decider selects.
	TaskRunner = adapt.Runner
	// TaskSpec describes a task for adaptive execution.
	TaskSpec = adapt.TaskSpec
	// TaskOutcome reports how a task ran.
	TaskOutcome = adapt.Outcome
	// AdaptationEngine is a per-host adaptation engine: it re-selects the
	// paradigm per interaction and records the decision trajectory
	// (switches, model regret, history).
	AdaptationEngine = adapt.Engine
	// AdaptationDecision is one entry in an engine's trajectory.
	AdaptationDecision = adapt.Decision
	// AdaptiveDecider selects paradigms from live context with EWMA
	// smoothing, battery-aware energy weighting and switching hysteresis.
	AdaptiveDecider = policy.AdaptiveDecider
	// ParadigmObjective weights the decision score (bytes, latency,
	// monetary cost, energy).
	ParadigmObjective = policy.Objective
	// EWMA smooths a sensed numeric stream.
	EWMA = policy.EWMA
)

// NewTaskRunner builds an adaptive runner on h (nil decider = cost model).
func NewTaskRunner(h *Host, d ParadigmDecider) *TaskRunner { return adapt.NewRunner(h, d) }

// NewAdaptationEngine builds a per-host adaptation engine on h (nil
// decider = battery-aware adaptive decider over the default objective).
func NewAdaptationEngine(h *Host, d ParadigmDecider) *AdaptationEngine { return adapt.NewEngine(h, d) }

// DecideParadigm is the validating decision entry point: hostile task
// models and empty allowed sets error instead of panicking, and the choice
// is clamped to the allowed set.
func DecideParadigm(d ParadigmDecider, t ParadigmTask, allowed []Paradigm, ctx *Context) (Paradigm, error) {
	return policy.Decide(d, t, allowed, ctx)
}

// DecodeTaskArgs is the service-side inverse of the adaptive runner's CS
// argument encoding; EncodeTaskReplies is the inverse of its reply
// decoding. Services meant to interoperate with adaptive clients use both.
func DecodeTaskArgs(frames [][]byte) []int64 { return adapt.DecodeArgs(frames) }

// EncodeTaskReplies encodes service replies for adaptive CS clients.
func EncodeTaskReplies(values []int64) [][]byte { return adapt.EncodeReplies(values) }

// Simulation substrate.
type (
	// Sim is the discrete-event scheduler.
	Sim = netsim.Sim
	// SimNetwork adapts a simulated network to transport endpoints.
	SimNetwork = transport.SimNetwork
	// Network is the simulated wireless field.
	Network = netsim.Network
	// Position is a point on the field.
	Position = netsim.Position
	// LinkClass describes a physical layer.
	LinkClass = netsim.LinkClass
)

// Predefined link classes.
var (
	AdHoc = netsim.AdHoc
	WLAN  = netsim.WLAN
	GPRS  = netsim.GPRS
	LAN   = netsim.LAN
)

// NewSim returns a deterministic simulator for the given seed. Its event
// queue is a hashed hierarchical timing wheel; NewSimHeap keeps the original
// binary-heap engine as a differential oracle with identical semantics.
func NewSim(seed int64) *Sim { return netsim.NewSim(seed) }

// NewSimHeap returns a simulator on the binary-heap event queue, the timing
// wheel's bit-identical differential oracle.
func NewSimHeap(seed int64) *Sim { return netsim.NewSimHeap(seed) }

// NewNetwork returns an empty simulated network driven by sim.
func NewNetwork(sim *Sim) *Network { return netsim.NewNetwork(sim) }

// NewSimNetwork adapts net for transport endpoints.
func NewSimNetwork(net *Network) *SimNetwork { return transport.NewSimNetwork(net) }

// ListenTCP starts a real-TCP endpoint (for daemons; the simulator is the
// default substrate for experiments).
func ListenTCP(addr string) (*transport.TCPEndpoint, error) { return transport.ListenTCP(addr) }

// NewWallScheduler returns a wall-clock scheduler for real-TCP hosts.
func NewWallScheduler() *transport.WallScheduler { return transport.NewWallScheduler() }

// Real-wire cluster mode: N daemons on real sockets discover each other
// through seed nodes, keep a live peer set with probing and eviction, and
// heal when members restart. Scenario workloads replay against the live
// members with the same metrics tables as simulated runs.
type (
	// ClusterNode is one member of a bootstrapped daemon cluster.
	ClusterNode = cluster.Node
	// ClusterConfig tunes seeds, probing and eviction.
	ClusterConfig = cluster.Config
	// ClusterStats counts membership activity.
	ClusterStats = cluster.Stats
	// TCPUsage snapshots a TCP endpoint's traffic counters.
	TCPUsage = transport.TCPUsage
	// LiveReplay drives scenario workloads against a running cluster.
	LiveReplay = scenario.Live
	// LiveReplayResult is the outcome of one live replay.
	LiveReplayResult = scenario.LiveResult
	// LiveReplayRow is one workload's live outcome.
	LiveReplayRow = scenario.LiveRow
)

// ChanCluster is the mux channel the membership protocol rides on.
const ChanCluster = transport.ChanCluster

// SinkServiceName names the echo service live daemons register so Calls
// workloads have a fixed landing pad (see NewSinkService).
const SinkServiceName = scenario.SinkServiceName

// JoinCluster starts a cluster member on ch (conventionally the host mux's
// ChanCluster channel) and bootstraps through cfg.Seeds.
func JoinCluster(ch transport.Endpoint, sched transport.Scheduler, cfg ClusterConfig) *ClusterNode {
	return cluster.Join(ch, sched, cfg)
}

// NewSinkService returns the well-known echo service a live daemon
// registers under SinkServiceName.
func NewSinkService() core.ServiceFunc { return scenario.SinkService() }

// NewLiveReplay returns a driver replaying workloads from client against
// the given cluster member addresses.
func NewLiveReplay(client *Host, members []string) *LiveReplay {
	return scenario.NewLive(client, members)
}

// Mobility models for simulated populations.
type (
	// MobilityModel moves simulated nodes.
	MobilityModel = netsim.MobilityModel
	// RandomWaypoint is the classic pick-a-point-and-walk model.
	RandomWaypoint = netsim.RandomWaypoint
	// Waypath walks a fixed polyline.
	Waypath = netsim.Waypath
)

// Adversity layer: deterministic fault injection. Every fault decision
// draws from a dedicated seeded RNG, so faulty runs are exactly
// reproducible — and bit-identical at any worker count — while zero-valued
// fault configuration is provably inert.
type (
	// Impairment degrades a simulated link: extra drop probability,
	// tick-quantised latency jitter, bandwidth degradation.
	Impairment = netsim.Impairment
	// ChurnSchedule crashes/rejoins and duty-cycles simulated nodes.
	ChurnSchedule = netsim.ChurnSchedule
	// Churn is a running ChurnSchedule (see Network.StartChurn).
	Churn = netsim.Churn
	// FaultStats counts impairment drops and jitter on a Network.
	FaultStats = netsim.FaultStats
	// ReliableEndpoint adds budgeted ack/retry to any transport Endpoint.
	ReliableEndpoint = transport.Reliable
	// ReliableConfig tunes the ack/retry layer.
	ReliableConfig = transport.ReliableConfig
	// ReliableStats counts ack/retry outcomes.
	ReliableStats = transport.ReliableStats
	// ScenarioFaults is a Scenario's declarative fault block: link
	// impairments, churn, timed partitions, ack/retry, beacon-miss
	// eviction.
	ScenarioFaults = scenario.Faults
	// LinkFault impairs one population's links.
	LinkFault = scenario.LinkFault
	// ChurnFault churns one population.
	ChurnFault = scenario.ChurnFault
	// PartitionFault is a timed split-then-heal event.
	PartitionFault = scenario.PartitionFault
	// FaultEvent rewrites the world-wide impairment mid-run.
	FaultEvent = scenario.FaultEvent
	// RetryFault enables the ack/retry transport layer in a Scenario.
	RetryFault = scenario.RetryFault
	// ReliabilityProbe reports delivery ratio, retries and repair times.
	ReliabilityProbe = scenario.Reliability
)

// NewReliableEndpoint wraps ep in a budgeted ack/retry layer scheduled on
// sched. Both ends of a conversation must be wrapped.
func NewReliableEndpoint(ep transport.Endpoint, sched transport.Scheduler, cfg ReliableConfig) *ReliableEndpoint {
	return transport.NewReliable(ep, sched, cfg)
}

// Scenario API: declarative worlds, replication and sweeps.
//
// A Scenario describes a simulated deployment — field, node populations
// (placement, link class, mobility, host configuration), workloads across
// the four paradigms, probes and duration — and compiles into a World.
// RunSpec executes it for one seed; a ScenarioRunner replicates it across
// seeds, optionally in parallel, and aggregates the result tables into
// mean±stddev summaries.
type (
	// Scenario is a declarative experiment specification.
	Scenario = scenario.Spec
	// ScenarioField is the world's field in metres.
	ScenarioField = scenario.Field
	// Population declares one group of like-configured nodes.
	Population = scenario.Population
	// World is a compiled scenario: hosts, platforms, beacons, network.
	World = scenario.World
	// ScenarioWorkload is one unit of activity started after warmup.
	ScenarioWorkload = scenario.Workload
	// ScenarioProbe contributes rows to the scenario's summary table.
	ScenarioProbe = scenario.Probe
	// ScenarioResult is the rendered output of a scenario or experiment.
	ScenarioResult = scenario.Result
	// ScenarioRunner replicates a run function across seeds.
	ScenarioRunner = scenario.Runner
	// MultiResult is a replicated run: per-seed results plus the aggregate.
	MultiResult = scenario.MultiResult
	// Placement positions a population's members.
	Placement = scenario.Placement
	// PlaceUniform scatters members uniformly over the field.
	PlaceUniform = scenario.PlaceUniform
	// PlacePoints places members at fixed positions.
	PlacePoints = scenario.PlacePoints
	// Table is an aligned result table.
	Table = metrics.Table
)

// Workloads spanning the four paradigms, plus the escape hatch.
type (
	// CallsWorkload runs Client/Server request/reply rounds.
	CallsWorkload = scenario.Calls
	// EvalWorkload ships code once for Remote Evaluation.
	EvalWorkload = scenario.EvalOnce
	// FetchRunWorkload fetches a component once and runs it locally (COD).
	FetchRunWorkload = scenario.FetchRun
	// AgentWorkload launches one mobile agent.
	AgentWorkload = scenario.SpawnAgent
	// CourierWorkload launches a store-carry-forward courier fleet.
	CourierWorkload = scenario.Couriers
	// FetchWaveWorkload rolls a component out to a whole population (COD
	// at city scale): each member fetches from the nearest server as it
	// roams into range, retrying until it succeeds.
	FetchWaveWorkload = scenario.FetchWave
	// AdaptiveWorkload runs a continuous task stream through per-client
	// adaptation engines, re-selecting the paradigm per interaction from
	// live sensed context (or pinned to one paradigm as a control group).
	AdaptiveWorkload = scenario.Adaptive
	// AdaptiveWorkloadStats records an AdaptiveWorkload's outcomes.
	AdaptiveWorkloadStats = scenario.AdaptiveStats
	// WorkloadFunc adapts a function to a ScenarioWorkload.
	WorkloadFunc = scenario.Func
)

// ScenarioSense is a Scenario's live context-sensing block: link state,
// retry accounting, battery and neighborhood sampled into each host's
// context service at a fixed tick. The zero value is inert.
type ScenarioSense = scenario.Sense

// ComputeRefIPS is the reference CPU speed (VM instructions per second)
// that ParadigmTask.ComputeUnits are measured against; a host with
// HostConfig.ComputeRate == ComputeRefIPS is a 1.0-factor machine.
const ComputeRefIPS = scenario.ComputeRefIPS

// Built-in probes.
type (
	// MeanNeighborsProbe reports mean radio-neighbor counts.
	MeanNeighborsProbe = scenario.MeanNeighbors
	// CoverageProbe reports discovery coverage of a service.
	CoverageProbe = scenario.Coverage
	// BeaconTrafficProbe reports beacon broadcast/reception totals.
	BeaconTrafficProbe = scenario.BeaconTraffic
	// AgentHopsProbe reports agent migration totals.
	AgentHopsProbe = scenario.AgentHops
	// DeliveriesProbe reports courier delivery statistics.
	DeliveriesProbe = scenario.Deliveries
	// FetchesProbe reports FetchWaveWorkload rollout progress.
	FetchesProbe = scenario.Fetches
	// NetTrafficProbe reports whole-network traffic totals.
	NetTrafficProbe = scenario.NetTraffic
	// DecisionsProbe reports an AdaptiveWorkload's trajectory: completions
	// per paradigm, decision share over time, switches, regret, battery
	// survival.
	DecisionsProbe = scenario.Decisions
	// ProbeFunc adapts a function to a ScenarioProbe.
	ProbeFunc = scenario.ProbeFunc
)

// GreedyCourierProgram is the greedy-geographic store-carry-forward courier
// used by CourierWorkload by default; platforms carrying it need
// GreedyGeoCaps (set Population.ExtraCaps = logmob.GreedyGeoCaps).
var GreedyCourierProgram = scenario.GreedyCourierProgram

// GreedyGeoCaps provides the geo_pick_greedy capability GreedyCourierProgram
// requires.
func GreedyGeoCaps(w *World) func(*AgentPlatform, *Unit) []vm.HostFunc {
	return scenario.GreedyGeoCaps(w)
}

// NewWorld returns an empty deterministic simulated world for a seed, for
// imperative construction with World.AddHost.
func NewWorld(seed int64) *World { return scenario.NewWorld(seed) }

// SetDefaultWorkers sizes the tick worker pool newly built worlds inherit:
// 1 keeps the serial engine, values above 1 shard each world's mobility and
// neighbor recomputation across that many workers, 0 or negative selects
// GOMAXPROCS. Per-seed results are bit-identical at any setting — workers
// only change wall-clock. A Scenario can override per-spec via its Workers
// field.
func SetDefaultWorkers(w int) { scenario.SetDefaultWorkers(w) }

// RunSpec compiles and runs a scenario for one seed, returning the compiled
// world (for ad-hoc measurement) and the probe summary table (nil without
// probes).
func RunSpec(s *Scenario, seed int64) (*World, *Table) { return s.Run(seed) }

// RunSeeds replicates a run function across n seeds starting at base,
// parallel at a time, and aggregates the per-seed tables.
func RunSeeds(base int64, n, parallel int, fn func(seed int64) *ScenarioResult) *MultiResult {
	return ScenarioRunner{Seeds: scenario.Seeds(base, n), Parallel: parallel}.Run(fn)
}

// NewResultTable creates an empty result table with the given column
// headers, for custom probes and workload reports.
func NewResultTable(title string, headers ...string) *Table {
	return metrics.NewTable(title, headers...)
}

// AggregateTables combines replicate tables of identical shape into one
// mean±stddev summary table.
func AggregateTables(tables []*Table) (*Table, error) { return metrics.AggregateTables(tables) }
