package logmob_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"logmob"
)

// festivalSpec declares a T11-equivalent world — fixed stages, a roaming
// beaconing crowd, and a greedy-geographic courier fleet — using only the
// public facade. This is the acceptance check that a downstream user can
// stand up a simulated deployment without touching internal/.
func festivalSpec(attendees int) (*logmob.Scenario, *logmob.CourierWorkload) {
	const (
		field = 400.0
		radio = 40.0
	)
	fleet := &logmob.CourierWorkload{
		Count:     3,
		TargetPop: "stage", SourcePop: "crowd",
		SrcMin: 100, SrcMax: 300,
		PayloadBytes: 200,
		NamePrefix:   "courier", TopicPrefix: "festival/courier",
	}
	spec := &logmob.Scenario{
		Name:  "festival via facade",
		Field: logmob.ScenarioField{Width: field, Height: field},
		Populations: []logmob.Population{
			{
				Name: "stage", Count: 2,
				Place:         logmob.PlacePoints{{X: field / 4, Y: field / 2}, {X: 3 * field / 4, Y: field / 2}},
				Link:          logmob.AdHoc,
				Range:         radio,
				AllowUnsigned: true,
				Agents:        true, MaxHops: 4096, ExtraCaps: logmob.GreedyGeoCaps,
				Beacon: 20 * time.Second,
				Ads:    []logmob.ServiceAd{{Service: "festival/info"}},
				AdSelf: "festival/",
			},
			{
				Name: "crowd", Count: attendees,
				Place:         logmob.PlaceUniform{},
				Link:          logmob.AdHoc,
				Range:         radio,
				AllowUnsigned: true,
				Agents:        true, AgentSeedOffset: 2, MaxHops: 4096, ExtraCaps: logmob.GreedyGeoCaps,
				Beacon: 20 * time.Second,
				Ads:    []logmob.ServiceAd{{Service: "presence"}},
				Mobility: &logmob.RandomWaypoint{
					FieldW: field, FieldH: field,
					SpeedMin: 1, SpeedMax: 5, Pause: 5 * time.Second,
				},
				MobilityTick: time.Second,
			},
		},
		Warmup:    30 * time.Second,
		Duration:  4 * time.Minute,
		Workloads: []logmob.ScenarioWorkload{fleet},
		Probes: []logmob.ScenarioProbe{
			logmob.MeanNeighborsProbe{Pop: "crowd"},
			logmob.BeaconTrafficProbe{},
			logmob.CoverageProbe{Pop: "crowd", Service: "festival/info"},
			logmob.AgentHopsProbe{Label: "courier hops / failed"},
			logmob.DeliveriesProbe{Of: fleet},
			logmob.NetTrafficProbe{},
		},
		TableTitle: "festival via facade",
	}
	return spec, fleet
}

func TestScenarioThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	spec, fleet := festivalSpec(120)
	w, table := logmob.RunSpec(spec, 1)
	if table == nil || table.Rows() != 9 {
		t.Fatalf("summary table incomplete: %v", table)
	}
	if len(w.Pops["crowd"]) != 120 || len(w.Pops["stage"]) != 2 {
		t.Fatalf("populations not compiled: %v", len(w.Pops["crowd"]))
	}
	if fleet.Stats.Spawned == 0 {
		t.Error("no couriers spawned")
	}
	// The world is inspectable through the facade, too.
	if w.Net.TotalUsage().MsgsSent == 0 {
		t.Error("no traffic moved")
	}
}

func TestScenarioReplicationThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	run := func(parallel int) *logmob.MultiResult {
		return logmob.RunSeeds(1, 3, parallel, func(seed int64) *logmob.ScenarioResult {
			spec, _ := festivalSpec(100)
			_, table := logmob.RunSpec(spec, seed)
			return &logmob.ScenarioResult{
				ID: "fest", Title: spec.Name, Tables: []*logmob.Table{table},
			}
		})
	}
	serial, par := run(1), run(3)
	for i := range serial.Replicates {
		var a, b strings.Builder
		serial.Replicates[i].Result.Render(&a)
		par.Replicates[i].Result.Render(&b)
		if a.String() != b.String() {
			t.Errorf("seed %d diverged between serial and parallel runs",
				serial.Replicates[i].Seed)
		}
	}
	if par.Aggregate == nil {
		t.Fatal("no aggregate")
	}
	var sb strings.Builder
	par.Aggregate.Render(&sb)
	if !strings.Contains(sb.String(), "mean radio neighbors") {
		t.Errorf("aggregate table missing probe rows:\n%s", sb.String())
	}
}

// TestAggregateTablesFacade exercises the re-exported aggregation helper.
func TestAggregateTablesFacade(t *testing.T) {
	mk := func(v int) *logmob.Table {
		tab := logmob.NewResultTable("t", "metric", "value")
		tab.AddRow("x", fmt.Sprintf("%d", v))
		return tab
	}
	agg, err := logmob.AggregateTables([]*logmob.Table{mk(10), mk(20)})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Cell(0, 1); got != "15±5" {
		t.Errorf("aggregate cell = %q", got)
	}
}

// TestFaultsThroughFacade declares a degraded festival using only the
// public surface: the fault block, the reliability probe and the fault
// accounting on the compiled world must all be reachable without touching
// internal/.
func TestFaultsThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	spec, _ := festivalSpec(80)
	spec.Faults = logmob.ScenarioFaults{
		Loss:        0.2,
		JitterTicks: 2,
		Links:       []logmob.LinkFault{{Pop: "crowd", Drop: 0.05}},
		Churn: []logmob.ChurnFault{{
			Pop: "crowd", Tick: 10 * time.Second, CrashProb: 0.05, Downtime: 15 * time.Second,
		}},
		Partitions: []logmob.PartitionFault{{
			At: 90 * time.Second, Heal: 3 * time.Minute, SplitX: 200,
		}},
		Retry:           logmob.RetryFault{Budget: 3, Timeout: 2 * time.Second},
		BeaconMissEvict: 3,
	}
	spec.Probes = append(spec.Probes, logmob.ReliabilityProbe{})
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid faulty spec rejected: %v", err)
	}
	w, table := logmob.RunSpec(spec, 1)
	if table == nil {
		t.Fatal("no summary table")
	}
	if w.Net.FaultStats().Drops == 0 {
		t.Error("no impairment drops at 20% loss")
	}
	if len(w.Reliables) == 0 || len(w.Churns) == 0 {
		t.Error("fault machinery not reachable on the compiled world")
	}
	var sb strings.Builder
	table.Render(&sb)
	if out := sb.String(); !strings.Contains(out, "delivery ratio %") {
		t.Errorf("reliability probe missing from table:\n%s", out)
	}

	// Hostile specs error through the facade, too.
	spec.Faults.Loss = 1.5
	if err := spec.Validate(); err == nil {
		t.Error("Validate accepted loss=1.5")
	}
}
