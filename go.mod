module logmob

go 1.24
